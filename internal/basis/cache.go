package basis

import (
	"sync"

	"repro/internal/mat"
	"repro/internal/obs"
)

// The decode fast path asks for the same deterministic bases over and over
// — every zone reconstruction in a campaign rebuilds its DCT Kron product,
// every Fig-4-style sweep rebuilds the N-point DFT — each an O(N²)
// (trigonometric) construction. Since a basis is fully determined by
// (kind, size), the constructors are memoized here.
//
// Cached matrices are SHARED: callers must treat them as read-only. Every
// in-repo consumer (analysis, synthesis, the cs decoders) only reads Φ.
// Learned (PCA) bases depend on trace data, not just (kind, n), so they are
// never cached here.

const cacheCap = 64 // distinct (kind, size) entries; evicts arbitrarily past this

// Hoisted obs handles (sdlint obshot: no per-call registry lookups on the
// decode hot path). hits/misses count matrix- and operator-cache lookups
// together; the size gauges track the live entry counts so the bounded-
// growth contract (≤ cacheCap each, arbitrary eviction past that — the
// cache is a memoizer, not an LRU) is observable in production.
var (
	obsCacheHits    = obs.GetCounter("basis.cache.hits")
	obsCacheMisses  = obs.GetCounter("basis.cache.misses")
	obsCacheEvicts  = obs.GetCounter("basis.cache.evictions")
	obsCacheSize    = obs.GetGauge("basis.cache.size")
	obsCacheOpsSize = obs.GetGauge("basis.cache.operators.size")
)

type cacheKey struct {
	kind Kind
	h, w int // w == 0 for 1-D bases
}

var (
	cacheMu sync.RWMutex
	cache   = make(map[cacheKey]*mat.Matrix)
	opCache = make(map[cacheKey]Operator)
)

func cacheGet(k cacheKey) (*mat.Matrix, bool) {
	cacheMu.RLock()
	m, ok := cache[k]
	cacheMu.RUnlock()
	if ok {
		obsCacheHits.Inc()
	} else {
		obsCacheMisses.Inc()
	}
	return m, ok
}

func cachePut(k cacheKey, m *mat.Matrix) {
	cacheMu.Lock()
	if len(cache) >= cacheCap {
		for old := range cache {
			delete(cache, old)
			break
		}
		obsCacheEvicts.Inc()
	}
	cache[k] = m
	obsCacheSize.Set(float64(len(cache)))
	cacheMu.Unlock()
}

func opCacheGet(k cacheKey) (Operator, bool) {
	cacheMu.RLock()
	op, ok := opCache[k]
	cacheMu.RUnlock()
	if ok {
		obsCacheHits.Inc()
	} else {
		obsCacheMisses.Inc()
	}
	return op, ok
}

func opCachePut(k cacheKey, op Operator) {
	cacheMu.Lock()
	if len(opCache) >= cacheCap {
		for old := range opCache {
			delete(opCache, old)
			break
		}
		obsCacheEvicts.Inc()
	}
	opCache[k] = op
	obsCacheOpsSize.Set(float64(len(opCache)))
	cacheMu.Unlock()
}

// Cached returns the shared, read-only n×n basis of the given kind,
// constructing and memoizing it on first use. Two concurrent first calls
// may both construct; one result wins the cache, both are valid.
func Cached(kind Kind, n int) (*mat.Matrix, error) {
	key := cacheKey{kind: kind, h: n}
	if m, ok := cacheGet(key); ok {
		return m, nil
	}
	m, err := New(kind, n)
	if err != nil {
		return nil, err
	}
	cachePut(key, m)
	return m, nil
}

// Cached2D returns the shared, read-only separable 2-D basis
// Kron2D(kind_h, kind_w) for an h-row × w-col field, memoized by
// (kind, h, w). This is the per-zone basis every broker reconstruction
// needs; memoizing it turns the O((h·w)²) Kron fill into a map lookup for
// all campaigns after the first.
func Cached2D(kind Kind, h, w int) (*mat.Matrix, error) {
	key := cacheKey{kind: kind, h: h, w: w}
	if m, ok := cacheGet(key); ok {
		return m, nil
	}
	pr, err := Cached(kind, h)
	if err != nil {
		return nil, err
	}
	pc, err := Cached(kind, w)
	if err != nil {
		return nil, err
	}
	m, err := Kron2D(pr, pc)
	if err != nil {
		return nil, err
	}
	cachePut(key, m)
	return m, nil
}

// CachedDCT is the memoized counterpart of DCT, preserving its no-error
// contract for the experiment sweeps that build Φ inline.
func CachedDCT(n int) *mat.Matrix {
	if m, err := Cached(KindDCT, n); err == nil {
		return m
	}
	return DCT(n)
}

// CachedDFT is the memoized counterpart of DFT.
func CachedDFT(n int) *mat.Matrix {
	if m, err := Cached(KindDFT, n); err == nil {
		return m
	}
	return DFT(n)
}

// CachedOperator returns the shared matrix-free operator for (kind, n),
// constructing and memoizing it on first use. Operators are immutable and
// safe for concurrent use, so sharing is free. Like Cached, two concurrent
// first calls may both construct; one wins the cache.
func CachedOperator(kind Kind, n int) (Operator, error) {
	key := cacheKey{kind: kind, h: n}
	if op, ok := opCacheGet(key); ok {
		return op, nil
	}
	op, err := OperatorFor(kind, n)
	if err != nil {
		return nil, err
	}
	opCachePut(key, op)
	return op, nil
}

// CachedOperator2D returns the memoized Separable2D operator for an
// h-row × w-col field in the given basis family — the matrix-free
// counterpart of Cached2D. The Kronecker product is never materialized:
// even when the 1-D factors fall back to dense matrices (non-dyadic
// sizes), applying them separably costs O(h·w·(h+w)) instead of the
// Kron path's O((h·w)²) flops and memory.
func CachedOperator2D(kind Kind, h, w int) (Operator, error) {
	key := cacheKey{kind: kind, h: h, w: w}
	if op, ok := opCacheGet(key); ok {
		return op, nil
	}
	rowOp, err := CachedOperator(kind, h)
	if err != nil {
		return nil, err
	}
	colOp, err := CachedOperator(kind, w)
	if err != nil {
		return nil, err
	}
	sep := NewSeparable2D(rowOp, colOp)
	opCachePut(key, sep)
	return sep, nil
}

// ResetCache drops all memoized bases and operators (test isolation /
// memory pressure).
func ResetCache() {
	cacheMu.Lock()
	cache = make(map[cacheKey]*mat.Matrix)
	opCache = make(map[cacheKey]Operator)
	obsCacheSize.Set(0)
	obsCacheOpsSize.Set(0)
	cacheMu.Unlock()
}
