package basis

import (
	"sync"

	"repro/internal/mat"
)

// The decode fast path asks for the same deterministic bases over and over
// — every zone reconstruction in a campaign rebuilds its DCT Kron product,
// every Fig-4-style sweep rebuilds the N-point DFT — each an O(N²)
// (trigonometric) construction. Since a basis is fully determined by
// (kind, size), the constructors are memoized here.
//
// Cached matrices are SHARED: callers must treat them as read-only. Every
// in-repo consumer (analysis, synthesis, the cs decoders) only reads Φ.
// Learned (PCA) bases depend on trace data, not just (kind, n), so they are
// never cached here.

const cacheCap = 64 // distinct (kind, size) entries; evicts arbitrarily past this

type cacheKey struct {
	kind Kind
	h, w int // w == 0 for 1-D bases
}

var (
	cacheMu sync.RWMutex
	cache   = make(map[cacheKey]*mat.Matrix)
)

func cacheGet(k cacheKey) (*mat.Matrix, bool) {
	cacheMu.RLock()
	m, ok := cache[k]
	cacheMu.RUnlock()
	return m, ok
}

func cachePut(k cacheKey, m *mat.Matrix) {
	cacheMu.Lock()
	if len(cache) >= cacheCap {
		for old := range cache {
			delete(cache, old)
			break
		}
	}
	cache[k] = m
	cacheMu.Unlock()
}

// Cached returns the shared, read-only n×n basis of the given kind,
// constructing and memoizing it on first use. Two concurrent first calls
// may both construct; one result wins the cache, both are valid.
func Cached(kind Kind, n int) (*mat.Matrix, error) {
	key := cacheKey{kind: kind, h: n}
	if m, ok := cacheGet(key); ok {
		return m, nil
	}
	m, err := New(kind, n)
	if err != nil {
		return nil, err
	}
	cachePut(key, m)
	return m, nil
}

// Cached2D returns the shared, read-only separable 2-D basis
// Kron2D(kind_h, kind_w) for an h-row × w-col field, memoized by
// (kind, h, w). This is the per-zone basis every broker reconstruction
// needs; memoizing it turns the O((h·w)²) Kron fill into a map lookup for
// all campaigns after the first.
func Cached2D(kind Kind, h, w int) (*mat.Matrix, error) {
	key := cacheKey{kind: kind, h: h, w: w}
	if m, ok := cacheGet(key); ok {
		return m, nil
	}
	pr, err := Cached(kind, h)
	if err != nil {
		return nil, err
	}
	pc, err := Cached(kind, w)
	if err != nil {
		return nil, err
	}
	m, err := Kron2D(pr, pc)
	if err != nil {
		return nil, err
	}
	cachePut(key, m)
	return m, nil
}

// CachedDCT is the memoized counterpart of DCT, preserving its no-error
// contract for the experiment sweeps that build Φ inline.
func CachedDCT(n int) *mat.Matrix {
	if m, err := Cached(KindDCT, n); err == nil {
		return m
	}
	return DCT(n)
}

// CachedDFT is the memoized counterpart of DFT.
func CachedDFT(n int) *mat.Matrix {
	if m, err := Cached(KindDFT, n); err == nil {
		return m
	}
	return DFT(n)
}

// ResetCache drops all memoized bases (test isolation / memory pressure).
func ResetCache() {
	cacheMu.Lock()
	cache = make(map[cacheKey]*mat.Matrix)
	cacheMu.Unlock()
}
