// Package chaos runs the full Fig. 1 hierarchy under scripted fault
// plans: it bridges every NanoCloud bus through its own seeded
// netsim.Network (one per broker, so zone-parallel assembly never shares
// an RNG stream) and exposes the per-broker FaultPlans for tests and
// experiments to script partitions, crashes, burst loss, and
// duplication against. It lives beside testutil but in its own package:
// broker's internal tests import testutil, so testutil itself must not
// import core.
package chaos

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/netsim"
)

// Harness is a deployed SenseDroid hierarchy whose bus traffic flows
// through fault-injectable simulated networks.
type Harness struct {
	SD *core.SenseDroid

	// nets and plans are keyed by broker ID. Both maps are built once in
	// New and only read afterwards (the interceptors and accessors), so
	// they need no lock; the Network and FaultPlan values do their own
	// locking.
	nets  map[string]*netsim.Network
	plans map[string]*netsim.FaultPlan
}

// New builds the hierarchy and splices one netsim.Network per NanoCloud
// between each bus and its subscribers. Network seeds derive from
// opts.Seed and the broker ID, so a fixed deployment seed fixes every
// fault/loss draw too.
func New(opts core.Options) (*Harness, error) {
	sd, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	h := &Harness{
		SD:    sd,
		nets:  make(map[string]*netsim.Network),
		plans: make(map[string]*netsim.FaultPlan),
	}
	for _, brID := range sd.BrokerIDs() {
		b, ok := sd.BusOf(brID)
		if !ok {
			sd.Close()
			return nil, fmt.Errorf("chaos: no bus for broker %q", brID)
		}
		net := netsim.New(netSeed(opts.Seed, brID))
		if err := net.Register(brID, nil); err != nil {
			sd.Close()
			return nil, err
		}
		for _, nodeID := range sd.NodesOf(brID) {
			if err := net.Register(nodeID, nil); err != nil {
				sd.Close()
				return nil, err
			}
		}
		plan := netsim.NewFaultPlan()
		net.SetFaultPlan(plan)
		h.nets[brID] = net
		h.plans[brID] = plan
		b.SetInterceptor(interceptFor(net, brID))
	}
	return h, nil
}

// netSeed derives a per-broker network seed from the deployment seed.
func netSeed(seed int64, brokerID string) int64 {
	f := fnv.New64a()
	//lint:ignore errcheck fnv.Write never fails
	_, _ = f.Write([]byte(brokerID))
	return seed ^ int64(f.Sum64())
}

// interceptFor routes one NanoCloud bus through its simulated network.
// Topics on an NC bus have two request/reply shapes (node IDs themselves
// contain slashes, e.g. "lc0/nc0/n3"):
//
//	<brID>/node/<nodeID>/<op>            broker → node command
//	<brID>/node/<nodeID>/<op>/reply/<k>  node → broker reply
//
// Anything else is control traffic and passes through unfaulted.
func interceptFor(net *netsim.Network, brID string) bus.Interceptor {
	prefix := brID + "/node/"
	return func(m bus.Message) (bool, error) {
		rest, ok := strings.CutPrefix(m.Topic, prefix)
		if !ok {
			return true, nil
		}
		segs := strings.Split(rest, "/")
		var from, to string
		if len(segs) >= 4 && segs[len(segs)-2] == "reply" {
			from, to = strings.Join(segs[:len(segs)-3], "/"), brID
		} else if len(segs) >= 2 {
			from, to = brID, strings.Join(segs[:len(segs)-1], "/")
		} else {
			return true, nil
		}
		return net.Deliver(netsim.Message{From: from, To: to, Topic: m.Topic, Payload: m.Payload})
	}
}

// Plan returns the fault plan governing a broker's network (nil for an
// unknown broker ID).
func (h *Harness) Plan(brokerID string) *netsim.FaultPlan { return h.plans[brokerID] }

// Network returns a broker's simulated network (nil for an unknown
// broker ID).
func (h *Harness) Network(brokerID string) *netsim.Network { return h.nets[brokerID] }

// Totals aggregates traffic stats across every broker's network.
func (h *Harness) Totals() netsim.Stats {
	var t netsim.Stats
	for _, brID := range h.SD.BrokerIDs() {
		s := h.nets[brID].Totals()
		t.TxMessages += s.TxMessages
		t.RxMessages += s.RxMessages
		t.TxBytes += s.TxBytes
		t.RxBytes += s.RxBytes
		t.Dropped += s.Dropped
	}
	return t
}

// PartitionBroker severs every node↔broker link on one broker's network
// for the given message-count window — the "NanoCloud cut off from its
// fleet" scenario.
func (h *Harness) PartitionBroker(brokerID string, fromMsg, toMsg int) {
	plan := h.plans[brokerID]
	if plan == nil {
		return
	}
	for _, nodeID := range h.SD.NodesOf(brokerID) {
		plan.Partition(brokerID, nodeID, fromMsg, toMsg)
	}
}

// BurstBroker installs a Gilbert–Elliott burst-loss channel on every
// node↔broker link of one broker's network.
func (h *Harness) BurstBroker(brokerID string, cfg netsim.GilbertElliott) {
	plan := h.plans[brokerID]
	if plan == nil {
		return
	}
	for _, nodeID := range h.SD.NodesOf(brokerID) {
		plan.SetDuplexBurstLink(brokerID, nodeID, cfg)
	}
}

// Close tears down the deployment (detaches nodes, closes buses).
func (h *Harness) Close() { h.SD.Close() }
