package chaos

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/testutil"
)

func chaosOpts() core.Options {
	return core.Options{
		FieldW: 16, FieldH: 16,
		ZoneRows: 2, ZoneCols: 2,
		NCsPerZone: 2, NodesPerNC: 4,
		Seed:    99,
		Timeout: 100 * time.Millisecond,
	}
}

func chaosTruth() *field.Field {
	return field.GenPlumes(16, 16, 12, []field.Plume{
		{Row: 4, Col: 4, Sigma: 2, Amplitude: 30},
		{Row: 11, Col: 12, Sigma: 3, Amplitude: 20},
	})
}

// scriptFaults is the reference chaos plan: a fully partitioned broker
// whose infra is also offline (zone 0 must degrade around it), ≥10%
// burst loss on another broker's fleet (zone 2), and a crash/restart of
// a third broker's whole fleet for the first two message slots (zone 3)
// that per-call retries must absorb.
func scriptFaults(h *Harness) {
	h.PartitionBroker("lc0/nc0", 0, 1<<30)
	if br, ok := h.SD.BrokerByID("lc0/nc0"); ok {
		br.SetInfraEnabled(false)
	}
	// ~43% of messages in the bad state at 60% loss ⇒ ~27% average loss.
	h.BurstBroker("lc2/nc0", netsim.GilbertElliott{
		PGoodToBad: 0.3, PBadToGood: 0.4, LossGood: 0.02, LossBad: 0.6,
	})
	for _, id := range h.SD.NodesOf("lc3/nc1") {
		h.Plan("lc3/nc1").Crash(id, 0, 2)
	}
}

// runChaosCampaign deploys the hierarchy behind fault-injected networks,
// applies the script (nil for a fault-free baseline), and runs one
// uniform campaign.
func runChaosCampaign(t *testing.T, script func(*Harness)) (*core.CampaignResult, netsim.Stats) {
	t.Helper()
	h, err := New(chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.SD.SetTruth(chaosTruth()); err != nil {
		t.Fatal(err)
	}
	if script != nil {
		script(h)
	}
	res, err := h.SD.RunCampaign(core.CampaignConfig{TotalM: 100})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	return res, h.Totals()
}

// TestChaosCampaignSurvivesFaultPlan is the end-to-end resilience check:
// under a scripted partition + infra outage, burst loss, and fleet
// crash/restart, a full hierarchical campaign completes, reports the
// lost broker, and reconstructs within 2× of the fault-free NMSE.
func TestChaosCampaignSurvivesFaultPlan(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	obs.Enable()
	defer obs.Disable()
	recovered0 := obs.GetCounter("bus.retry.recovered").Value()
	parts0 := obs.GetCounter("netsim.fault.partitioned").Value()
	burst0 := obs.GetCounter("netsim.fault.burst_lost").Value()
	down0 := obs.GetCounter("netsim.fault.down").Value()

	base, baseStats := runChaosCampaign(t, nil)
	if base.BrokersFailed != 0 || base.Shortfall != 0 {
		t.Fatalf("fault-free run reports faults: %+v", base)
	}
	if baseStats.Dropped != 0 {
		t.Fatalf("fault-free run dropped %d messages", baseStats.Dropped)
	}

	res, stats := runChaosCampaign(t, scriptFaults)
	if res.BrokersFailed != 1 {
		t.Fatalf("brokers failed %d, want 1 (the partitioned one)", res.BrokersFailed)
	}
	if res.Measurements == 0 || res.NodesUsed == 0 {
		t.Fatalf("degraded campaign gathered nothing: %+v", res)
	}
	if res.GlobalNMSE > 2*base.GlobalNMSE {
		t.Fatalf("faulted NMSE %v exceeds 2x fault-free %v", res.GlobalNMSE, base.GlobalNMSE)
	}
	if stats.Dropped == 0 {
		t.Fatal("fault plan dropped no traffic")
	}
	// Each faulted mechanism left its fingerprint where it was scripted.
	if d := obs.GetCounter("netsim.fault.partitioned").Value() - parts0; d == 0 {
		t.Fatal("no partition drops recorded")
	}
	if d := obs.GetCounter("netsim.fault.burst_lost").Value() - burst0; d == 0 {
		t.Fatal("no burst-loss drops recorded")
	}
	if d := obs.GetCounter("netsim.fault.down").Value() - down0; d == 0 {
		t.Fatal("no crash rejections recorded")
	}
	if d := obs.GetCounter("bus.retry.recovered").Value() - recovered0; d == 0 {
		t.Fatal("no request recovered via retry; crash/restart was not absorbed")
	}
	if h := stats; h.TxMessages == 0 || h.RxMessages == 0 {
		t.Fatalf("traffic accounting empty: %+v", h)
	}
}

// TestChaosDeterministicAcrossGOMAXPROCS pins the faulted campaign's
// full reconstruction to the seed: zone fan-out runs on separate
// per-broker networks, so scheduling must not change a single float.
func TestChaosDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) *core.CampaignResult {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		res, _ := runChaosCampaign(t, scriptFaults)
		return res
	}
	serial := run(1)
	parallel := run(4)
	if serial.Measurements != parallel.Measurements ||
		serial.BrokersFailed != parallel.BrokersFailed ||
		serial.Shortfall != parallel.Shortfall {
		t.Fatalf("campaign accounting differs: serial %+v vs parallel %+v", serial, parallel)
	}
	if serial.GlobalNMSE != parallel.GlobalNMSE {
		t.Fatalf("NMSE differs: %v vs %v", serial.GlobalNMSE, parallel.GlobalNMSE)
	}
	for i, v := range serial.Reconstructed.Data {
		if parallel.Reconstructed.Data[i] != v {
			t.Fatalf("reconstruction differs at cell %d: %v vs %v", i, v, parallel.Reconstructed.Data[i])
		}
	}
}

// TestHarnessWiring covers the harness surface: per-broker networks and
// plans exist, unknown IDs are inert, and Totals sums per-network stats.
func TestHarnessWiring(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	h, err := New(chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ids := h.SD.BrokerIDs()
	if len(ids) != 8 {
		t.Fatalf("brokers %d, want 8", len(ids))
	}
	for _, id := range ids {
		if h.Plan(id) == nil || h.Network(id) == nil {
			t.Fatalf("broker %s missing plan or network", id)
		}
	}
	if h.Plan("nope") != nil || h.Network("nope") != nil {
		t.Fatal("unknown broker should have no plan/network")
	}
	// Unknown IDs are no-ops, not panics.
	h.PartitionBroker("nope", 0, 10)
	h.BurstBroker("nope", netsim.GilbertElliott{})
	if err := h.SD.SetTruth(chaosTruth()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.SD.RunCampaign(core.CampaignConfig{TotalM: 64}); err != nil {
		t.Fatal(err)
	}
	var want netsim.Stats
	for _, id := range ids {
		s := h.Network(id).Totals()
		want.TxMessages += s.TxMessages
		want.RxMessages += s.RxMessages
		want.TxBytes += s.TxBytes
		want.RxBytes += s.RxBytes
		want.Dropped += s.Dropped
	}
	if got := h.Totals(); got != want {
		t.Fatalf("Totals %+v, want per-network sum %+v", got, want)
	}
	if got := h.Totals(); got.TxMessages == 0 || got.RxMessages == 0 {
		t.Fatalf("campaign traffic not routed through the networks: %+v", got)
	}
}
