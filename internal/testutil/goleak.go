// Package testutil holds small helpers shared by the project's tests.
package testutil

import (
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB the helpers need (kept tiny so the
// package does not import testing into non-test builds).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// CheckGoroutines registers a test cleanup that fails the test if
// goroutines spawned during it are still alive at the end. Call it first
// thing in the test; the snapshot it takes becomes the baseline.
//
// Goroutines owned by the runtime and the testing framework are filtered
// out by stack inspection. Because teardown is asynchronous (a Close may
// return a moment before its goroutines finish dying), the check retries
// briefly before declaring a leak.
func CheckGoroutines(t TB) {
	t.Helper()
	before := goroutineCount()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			after = goroutineCount()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after; stacks:\n%s", before, after, buf[:n])
		}
	})
}

// goroutineCount counts live goroutines that belong to the code under
// test: runtime/testing bookkeeping goroutines are excluded so the count
// is stable across `go test` plumbing.
func goroutineCount() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	count := 0
	for _, stack := range strings.Split(string(buf[:n]), "\n\n") {
		if stack == "" || ignoredStack(stack) {
			continue
		}
		count++
	}
	return count
}

func ignoredStack(stack string) bool {
	for _, marker := range []string{
		"testing.(*T).Run(",           // test framework bookkeeping
		"testing.(*M).",               // test main
		"testing.runFuzz",             // fuzz workers
		"runtime.goexit0",             // dying goroutine mid-teardown
		"created by runtime.",         // GC, scavenger, finalizer spawns
		"runtime.gc",                  // GC helpers
		"runtime.bgsweep",             // background sweeper
		"runtime.bgscavenge",          // background scavenger
		"runtime.forcegchelper",       // forced-GC helper
		"runtime.ReadTrace",           // trace reader
		"signal.signal_recv",          // os/signal receiver
		"runtime.ensureSigM",          // signal mask goroutine
		"os/signal.loop",              // signal loop
		"testing.tRunner.func",        // per-test cleanup wrapper
		"runtime/pprof.profileWriter", // profiler
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
