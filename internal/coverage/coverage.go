// Package coverage implements the spatial and temporal coverage metrics
// for mobile sensing campaigns (after Weinschrott et al.'s StreamShaper,
// which the paper's related work draws on): how much of the area has been
// sensed recently enough to be trusted.
package coverage

import (
	"errors"
	"sort"
)

// Log accumulates (cell, time) sensing events over a w×h grid.
type Log struct {
	w, h    int
	samples map[int][]float64 // cell → sorted sample times
}

// NewLog creates an empty coverage log.
func NewLog(w, h int) (*Log, error) {
	if w <= 0 || h <= 0 {
		return nil, errors.New("coverage: grid must be positive")
	}
	return &Log{w: w, h: h, samples: make(map[int][]float64)}, nil
}

// Record logs a sample of cell loc at time t (seconds). Out-of-range
// locations are rejected.
func (l *Log) Record(loc int, t float64) error {
	if loc < 0 || loc >= l.w*l.h {
		return errors.New("coverage: location out of range")
	}
	ts := l.samples[loc]
	if n := len(ts); n > 0 && t < ts[n-1] {
		// Keep sorted on out-of-order input.
		i := sort.SearchFloat64s(ts, t)
		ts = append(ts, 0)
		copy(ts[i+1:], ts[i:])
		ts[i] = t
	} else {
		ts = append(ts, t)
	}
	l.samples[loc] = ts
	return nil
}

// Cells returns how many distinct cells have at least one sample.
func (l *Log) Cells() int { return len(l.samples) }

// Spatial returns the fraction of grid cells lying within Chebyshev
// distance radius of some sampled cell — the spatial coverage metric. A
// radius of 0 counts only directly sampled cells.
func (l *Log) Spatial(radius int) float64 {
	if radius < 0 {
		radius = 0
	}
	n := l.w * l.h
	if n == 0 {
		return 0
	}
	covered := make([]bool, n)
	for loc := range l.samples {
		r0, c0 := loc%l.h, loc/l.h
		for dc := -radius; dc <= radius; dc++ {
			for dr := -radius; dr <= radius; dr++ {
				r, c := r0+dr, c0+dc
				if r < 0 || r >= l.h || c < 0 || c >= l.w {
					continue
				}
				covered[c*l.h+r] = true
			}
		}
	}
	cnt := 0
	for _, v := range covered {
		if v {
			cnt++
		}
	}
	return float64(cnt) / float64(n)
}

// Temporal returns the fraction of *sampled* cells whose maximum
// inter-sample gap over the horizon [0, horizon] stays within deadline —
// the temporal coverage metric (gaps at the start and end of the horizon
// count).
func (l *Log) Temporal(deadline, horizon float64) float64 {
	if len(l.samples) == 0 {
		return 0
	}
	ok := 0
	for _, ts := range l.samples {
		maxGap := ts[0] - 0
		for i := 1; i < len(ts); i++ {
			if g := ts[i] - ts[i-1]; g > maxGap {
				maxGap = g
			}
		}
		if g := horizon - ts[len(ts)-1]; g > maxGap {
			maxGap = g
		}
		if maxGap <= deadline {
			ok++
		}
	}
	return float64(ok) / float64(len(l.samples))
}

// MaxStaleness returns, for a given wall time, the largest age of the most
// recent sample across all sampled cells (how stale the freshest map could
// be), or horizonless -1 when nothing was sampled.
func (l *Log) MaxStaleness(now float64) float64 {
	if len(l.samples) == 0 {
		return -1
	}
	worst := 0.0
	for _, ts := range l.samples {
		if age := now - ts[len(ts)-1]; age > worst {
			worst = age
		}
	}
	return worst
}
