package coverage

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLogValidation(t *testing.T) {
	if _, err := NewLog(0, 4); err == nil {
		t.Fatal("want grid error")
	}
}

func TestRecordAndCells(t *testing.T) {
	l, _ := NewLog(4, 4)
	if err := l.Record(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(3, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(7, 1); err != nil {
		t.Fatal(err)
	}
	if l.Cells() != 2 {
		t.Fatalf("cells %d", l.Cells())
	}
	if err := l.Record(99, 0); err == nil {
		t.Fatal("want range error")
	}
}

func TestSpatialRadiusZero(t *testing.T) {
	l, _ := NewLog(4, 4)
	l.Record(0, 1)
	l.Record(5, 1)
	if got := l.Spatial(0); got != 2.0/16 {
		t.Fatalf("spatial(0)=%v", got)
	}
	// Negative radius behaves like zero.
	if got := l.Spatial(-3); got != 2.0/16 {
		t.Fatalf("spatial(-3)=%v", got)
	}
}

func TestSpatialRadiusGrows(t *testing.T) {
	l, _ := NewLog(8, 8)
	// Single sample in the center: radius 1 covers a 3×3 block.
	l.Record(8*4+4, 1) // col 4, row 4
	if got := l.Spatial(1); got != 9.0/64 {
		t.Fatalf("spatial(1)=%v, want 9/64", got)
	}
	if got := l.Spatial(10); got != 1 {
		t.Fatalf("spatial(huge)=%v, want full coverage", got)
	}
}

func TestSpatialCornerClipping(t *testing.T) {
	l, _ := NewLog(8, 8)
	l.Record(0, 1) // corner: radius 1 covers 2×2
	if got := l.Spatial(1); got != 4.0/64 {
		t.Fatalf("corner spatial(1)=%v, want 4/64", got)
	}
}

func TestTemporal(t *testing.T) {
	l, _ := NewLog(2, 2)
	// Cell 0: regular samples every 10 s over [0,60].
	for _, tt := range []float64{5, 15, 25, 35, 45, 55} {
		l.Record(0, tt)
	}
	// Cell 1: one sample at t=5, then silence.
	l.Record(1, 5)
	// Deadline 12: cell 0 fine (max gap 10 incl. edges), cell 1 fails
	// (gap 55 at the end).
	if got := l.Temporal(12, 60); got != 0.5 {
		t.Fatalf("temporal=%v, want 0.5", got)
	}
	if got := l.Temporal(60, 60); got != 1 {
		t.Fatalf("temporal loose=%v, want 1", got)
	}
	empty, _ := NewLog(2, 2)
	if empty.Temporal(10, 60) != 0 {
		t.Fatal("empty temporal should be 0")
	}
}

func TestTemporalOutOfOrderRecording(t *testing.T) {
	l, _ := NewLog(1, 1)
	l.Record(0, 30)
	l.Record(0, 10) // out of order
	l.Record(0, 20)
	// Sorted gaps: 10,10,10 edges 10 and 30: max gap 30 (60-30).
	if got := l.Temporal(29, 60); got != 0 {
		t.Fatalf("temporal=%v, want 0 (trailing gap 30)", got)
	}
	if got := l.Temporal(30, 60); got != 1 {
		t.Fatalf("temporal=%v, want 1", got)
	}
}

func TestMaxStaleness(t *testing.T) {
	l, _ := NewLog(2, 1)
	if l.MaxStaleness(10) != -1 {
		t.Fatal("empty staleness should be -1")
	}
	l.Record(0, 8)
	l.Record(1, 2)
	if got := l.MaxStaleness(10); got != 8 {
		t.Fatalf("staleness %v, want 8", got)
	}
}

// Property: spatial coverage is monotone in radius and bounded in [0,1].
func TestPropSpatialMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(8), 1+rng.Intn(8)
		l, err := NewLog(w, h)
		if err != nil {
			return false
		}
		for i := 0; i < rng.Intn(10); i++ {
			if err := l.Record(rng.Intn(w*h), rng.Float64()*100); err != nil {
				return false
			}
		}
		prev := -1.0
		for r := 0; r <= 4; r++ {
			c := l.Spatial(r)
			if c < 0 || c > 1 || c < prev {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
