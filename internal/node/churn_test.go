package node

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/sensor"
	"repro/internal/testutil"
)

// rawEnvelope mirrors the bus request envelope so churn tests can
// publish commands with a *chosen* reply-to topic (bus.Request always
// generates a unique one, which would never collide with a dedup entry).
type rawEnvelope struct {
	ReplyTo string          `json:"replyTo"`
	Body    json.RawMessage `json:"body"`
}

func publishCommand(t *testing.T, b *bus.Bus, topic, replyTo string, body any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	env, err := json.Marshal(rawEnvelope{ReplyTo: replyTo, Body: raw})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(topic, env); err != nil {
		t.Fatal(err)
	}
}

func awaitReply(t *testing.T, sub *bus.Subscription, what string) bus.Message {
	t.Helper()
	select {
	case msg, ok := <-sub.C:
		if !ok {
			t.Fatalf("%s: reply channel closed", what)
		}
		return msg
	case <-time.After(2 * time.Second):
		t.Fatalf("%s: no reply within 2s", what)
	}
	return bus.Message{}
}

// TestChurnRecycledNodeIDs is the fleet-scale churn audit: 10 000 nodes
// attach, serve, and detach on one shared bus across generations that
// recycle the same node IDs. Run with -race. The goroutine guard pins
// that Detach really joins every serving goroutine — a single leaked
// serve loop per node would show up 10 000-fold here — and the served
// position checks pin that a recycled ID's handlers are live and answer
// as the *new* node.
func TestChurnRecycledNodeIDs(t *testing.T) {
	testutil.CheckGoroutines(t)
	const (
		cohort      = 500
		generations = 20 // cohort × generations = 10 000 attach/detach cycles
	)
	b := bus.New()
	defer b.Close()
	env := fakeEnv{value: 5}
	for g := 0; g < generations; g++ {
		nodes := make([]*Node, cohort)
		for i := range nodes {
			n, err := New(Config{
				ID:   fmt.Sprintf("n%d", i), // recycled every generation
				Seed: int64(g*cohort + i),
			}, env, mobility.Static{P: mobility.Point{X: float64(i % 80), Y: float64(g)}})
			if err != nil {
				t.Fatal(err)
			}
			if err := n.AttachBus(b, "nc0"); err != nil {
				t.Fatal(err)
			}
			nodes[i] = n
		}
		// A sample of this generation's nodes must actually serve.
		for _, i := range []int{0, cohort / 2, cohort - 1} {
			var rep PositionReply
			if err := bus.Request(b, PositionTopic("nc0", nodes[i].ID), struct{}{}, &rep, 2*time.Second); err != nil {
				t.Fatalf("generation %d node %d: %v", g, i, err)
			}
			if rep.NodeID != nodes[i].ID {
				t.Fatalf("generation %d: reply from %q, want %q", g, rep.NodeID, nodes[i].ID)
			}
		}
		for _, n := range nodes {
			n.Detach()
			n.Detach() // idempotent: the churn driver may double-reap
		}
	}
}

// TestRecycledIDFreshDedupWindow pins the recycling contract from the
// fleet layer: a node attached under a recycled ID must start with an
// empty reply-topic dedup window. The first node sees a command twice
// and suppresses the duplicate; a successor node with the same ID must
// serve a command carrying that same (stale) reply-to key, not inherit
// the predecessor's suppression state.
func TestRecycledIDFreshDedupWindow(t *testing.T) {
	testutil.CheckGoroutines(t)
	obs.Enable()
	defer obs.Disable()
	dupCounter := obs.GetCounter("node.bus.duplicates")

	b := bus.New()
	defer b.Close()
	env := fakeEnv{value: 9}
	mob := mobility.Static{P: mobility.Point{X: 10, Y: 10}}

	n1, err := New(Config{ID: "recycled", Seed: 1}, env, mob)
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.AttachBus(b, "nc0"); err != nil {
		t.Fatal(err)
	}

	const replyTo = "churn/reply/stale-key"
	sub, err := b.Subscribe(replyTo, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	body := MeasureRequest{Kind: string(sensor.Temperature)}
	topic := MeasureTopic("nc0", "recycled")

	publishCommand(t, b, topic, replyTo, body)
	awaitReply(t, sub, "first command")

	// Same reply-to again: the first node's window suppresses it.
	dupBefore := dupCounter.Value()
	publishCommand(t, b, topic, replyTo, body)
	deadline := time.Now().Add(2 * time.Second)
	for dupCounter.Value() == dupBefore {
		if time.Now().After(deadline) {
			t.Fatal("duplicate command was not suppressed by the serving node")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-sub.C:
		t.Fatal("suppressed duplicate still produced a reply")
	default:
	}

	// Recycle the ID: successor must serve the stale key afresh.
	n1.Detach()
	n2, err := New(Config{ID: "recycled", Seed: 2}, env, mob)
	if err != nil {
		t.Fatal(err)
	}
	if err := n2.AttachBus(b, "nc0"); err != nil {
		t.Fatal(err)
	}
	defer n2.Detach()
	publishCommand(t, b, topic, replyTo, body)
	msg := awaitReply(t, sub, "command to recycled ID")
	var reading FieldReading
	if err := json.Unmarshal(msg.Payload, &reading); err != nil {
		t.Fatal(err)
	}
	if reading.NodeID != "recycled" {
		t.Fatalf("reply from %q, want the recycled node", reading.NodeID)
	}
}

// TestAttachBusFailureLeavesNoState: attaching to a closed bus fails,
// and the failure is clean — no subscriptions, no goroutines, and the
// node remains attachable to a healthy bus afterwards.
func TestAttachBusFailureLeavesNoState(t *testing.T) {
	testutil.CheckGoroutines(t)
	n := newTestNode(t, "n0")

	dead := bus.New()
	dead.Close()
	if err := n.AttachBus(dead, "nc0"); err == nil {
		t.Fatal("attach to a closed bus succeeded")
	}
	n.Detach() // must be a no-op after a failed attach

	b := bus.New()
	defer b.Close()
	if err := n.AttachBus(b, "nc0"); err != nil {
		t.Fatalf("re-attach after failed attach: %v", err)
	}
	defer n.Detach()
	var rep StatusReply
	if err := bus.Request(b, StatusTopic("nc0", "n0"), struct{}{}, &rep, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if rep.NodeID != "n0" || rep.BatteryFrac <= 0 {
		t.Fatalf("status reply %+v", rep)
	}
}
