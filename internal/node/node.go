// Package node implements the mobile-node runtime of the SenseDroid
// middleware — the "thin client" of the paper's Fig. 2. A Node owns its
// sensing probes, privacy policy, energy meter/battery and mobility model,
// serves the broker's measure-on-demand commands over the NanoCloud bus,
// logs readings locally, and runs temporal-compressive context processing
// on-device.
package node

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/bus"
	"repro/internal/contextproc"
	"repro/internal/energy"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/privacy"
	"repro/internal/sensor"
	"repro/internal/store"
)

// Node observability handles (no-ops until obs.Enable).
var (
	obsMeasurements  = obs.GetCounter("node.measure.count")
	obsMeasureDenied = obs.GetCounter("node.measure.denied")
	obsServedCmds    = obs.GetCounter("node.bus.commands")
	obsDuplicateCmds = obs.GetCounter("node.bus.duplicates")
	obsContextRuns   = obs.GetCounter("node.context.runs")
)

// Environment supplies the physical ground truth a node's field sensors
// observe — in a deployment this is the real world; in this reproduction
// it is backed by a synthetic field.Field.
type Environment interface {
	// FieldValue returns the true value of the sensed quantity at a grid
	// index (column-stacked, Eq. 1 convention).
	FieldValue(kind sensor.Kind, gridIdx int) float64
	// GridDims returns the field grid dimensions (w, h).
	GridDims() (w, h int)
	// AreaDims returns the physical area dimensions the mobility models
	// roam over.
	AreaDims() (w, h float64)
}

// Config configures one node.
type Config struct {
	ID      string
	Seed    int64
	Profile sensor.DeviceProfile
	Motion  sensor.MotionScenario
	Indoor  sensor.Schedule
	Radio   energy.RadioKind
	Battery float64 // capacity in mJ; 0 = default 4e7 (a ~40 kJ phone pack)
}

// Node is one simulated handset participating in a NanoCloud.
type Node struct {
	ID      string
	Probes  *sensor.Registry
	Policy  *privacy.Policy
	Meter   *energy.Meter
	Battery *energy.Battery
	Radio   energy.RadioKind
	Store   *store.Store

	env      Environment
	mobility mobility.Model
	rng      *rand.Rand

	mu      sync.Mutex
	subs    []*bus.Subscription
	serveWG sync.WaitGroup // joins the bus-handler goroutines on Detach
}

// New builds a node with the full standard probe complement.
func New(cfg Config, env Environment, mob mobility.Model) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("node: empty ID")
	}
	if env == nil {
		return nil, errors.New("node: nil environment")
	}
	if mob == nil {
		return nil, errors.New("node: nil mobility model")
	}
	if cfg.Motion == "" {
		cfg.Motion = sensor.MotionIdle
	}
	if cfg.Indoor == nil {
		cfg.Indoor = sensor.AlternatingSchedule(0)
	}
	if cfg.Radio == "" {
		cfg.Radio = energy.RadioWiFi
	}
	if cfg.Battery <= 0 {
		cfg.Battery = 4e7
	}
	probes, err := sensor.StandardPhone(cfg.ID, cfg.Seed, cfg.Profile, cfg.Motion, cfg.Indoor)
	if err != nil {
		return nil, err
	}
	return &Node{
		ID:      cfg.ID,
		Probes:  probes,
		Policy:  privacy.AllowAll(sensor.Accelerometer, sensor.Temperature, sensor.GPS, sensor.WiFi, sensor.Light, sensor.Humidity, sensor.Barometer, sensor.Microphone),
		Meter:   energy.NewMeter(nil),
		Battery: energy.NewBattery(cfg.Battery),
		Radio:   cfg.Radio,
		Store:   store.New(4096),
		env:     env, mobility: mob,
		rng: rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
	}, nil
}

// Move advances the node's mobility model by dt seconds.
func (n *Node) Move(dt float64) mobility.Point {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mobility.Step(dt)
}

// GridIndex returns the field grid cell the node currently occupies.
func (n *Node) GridIndex() int {
	n.mu.Lock()
	p := n.mobility.Pos()
	n.mu.Unlock()
	aw, ah := n.env.AreaDims()
	gw, gh := n.env.GridDims()
	return mobility.GridIndex(p, aw, ah, gw, gh)
}

// FieldReading is one shared field measurement.
type FieldReading struct {
	NodeID  string  `json:"nodeId"`
	GridIdx int     `json:"gridIdx"`
	Value   float64 `json:"value"`
	Sigma   float64 `json:"sigma"`  // the node's noise std-dev for GLS weighting
	Denied  bool    `json:"denied"` // privacy policy refused to share
}

// MeasureField samples the environment field with the named probe kind at
// the node's current location, charging the battery and applying the
// privacy policy. The sensing happens regardless of policy (the user sees
// their own data); only *sharing* is gated.
func (n *Node) MeasureField(kind sensor.Kind) (FieldReading, error) {
	probes := n.Probes.ByKind(kind)
	if len(probes) == 0 {
		return FieldReading{}, fmt.Errorf("node %s: no probe of kind %q", n.ID, kind)
	}
	p := probes[0]
	idx := n.GridIndex()
	sigma := p.NoiseSigma()
	n.mu.Lock()
	noise := n.rng.NormFloat64() * sigma
	n.mu.Unlock()
	truth := n.env.FieldValue(kind, idx)
	value := truth + noise
	if err := n.Meter.ChargeSamples(kind, 1); err != nil {
		return FieldReading{}, err
	}
	//lint:ignore errcheck sampling-overhead drain is best-effort; depletion is surfaced by the caller's battery check
	_ = n.Battery.Drain(0.01)
	//lint:ignore errcheck local logging is best-effort; a full or closed store must not fail the measurement itself
	_ = n.Store.AppendScalar(fmt.Sprintf("%s/%s", n.ID, kind), 0, value)
	obsMeasurements.Inc()
	shared, ok := n.Policy.Filter(kind, []float64{value})
	if !ok {
		obsMeasureDenied.Inc()
		return FieldReading{NodeID: n.ID, GridIdx: idx, Denied: true}, nil
	}
	return FieldReading{NodeID: n.ID, GridIdx: idx, Value: shared[0], Sigma: sigma}, nil
}

// --- Bus protocol -------------------------------------------------------------

// MeasureRequest is the broker's measure-on-demand command.
type MeasureRequest struct {
	Kind string `json:"kind"`
}

// PositionReply answers a position query.
type PositionReply struct {
	NodeID  string `json:"nodeId"`
	GridIdx int    `json:"gridIdx"`
}

// StatusReply answers a status query: where the node is and how much
// battery it has left — the inputs to battery-aware duty scheduling.
type StatusReply struct {
	NodeID      string  `json:"nodeId"`
	GridIdx     int     `json:"gridIdx"`
	BatteryFrac float64 `json:"batteryFrac"`
	EnergyMJ    float64 `json:"energyMJ"` // meter total so far
}

// MeasureTopic returns the node's measure-command topic on an NC bus.
func MeasureTopic(ncID, nodeID string) string {
	return bus.NodeMeasureTopic(ncID, nodeID)
}

// PositionTopic returns the node's position-query topic.
func PositionTopic(ncID, nodeID string) string {
	return bus.NodePositionTopic(ncID, nodeID)
}

// StatusTopic returns the node's status-query topic.
func StatusTopic(ncID, nodeID string) string {
	return bus.NodeStatusTopic(ncID, nodeID)
}

// AttachBus subscribes the node's command handlers on the NanoCloud bus.
// Radio reception/transmission energy for each served request is charged
// to the node's meter.
//
// Attachment is all-or-nothing: if any subscription fails, AttachBus
// detaches whatever it had already subscribed (joining the serving
// goroutines) before returning the error, so a failed attach leaves no
// bus state or goroutines behind and needs no compensating Detach. A
// node is re-attachable after Detach — the fleet churn path recycles
// node IDs, and a recycled node must start with fresh handler state
// (in particular, an empty reply-topic dedup window).
func (n *Node) AttachBus(b *bus.Bus, ncID string) error {
	if err := n.serveTopic(b, MeasureTopic(ncID, n.ID), n.handleMeasure); err != nil {
		return err
	}
	if err := n.serveTopic(b, PositionTopic(ncID, n.ID), n.handlePosition); err != nil {
		n.Detach()
		return err
	}
	if err := n.serveTopic(b, StatusTopic(ncID, n.ID), n.handleStatus); err != nil {
		n.Detach()
		return err
	}
	return nil
}

// serveTopic subscribes one command topic and spawns the request-serving
// loop that answers it with fn's result. It is the node's single
// responder registration point: sdlint's topicflow analyzer treats every
// serveTopic call as "this node answers requests on that topic".
func (n *Node) serveTopic(b *bus.Bus, topic string, fn func(body []byte) (any, error)) error {
	sub, err := b.Subscribe(topic, 16)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.subs = append(n.subs, sub)
	n.mu.Unlock()
	n.serveWG.Add(1)
	go n.serve(b, sub, fn)
	return nil
}

// Detach unsubscribes all bus handlers and joins their goroutines: when
// Detach returns, no handler will touch the node or the bus again.
// Detach is idempotent — a second call (or a call on a never-attached
// node) is a no-op — and the node may AttachBus again afterwards.
func (n *Node) Detach() {
	n.mu.Lock()
	subs := n.subs
	n.subs = nil
	n.mu.Unlock()
	for _, s := range subs {
		s.Unsubscribe()
	}
	n.serveWG.Wait()
}

// dedupWindow bounds the per-handler duplicate-request memory: large
// enough to cover any plausible duplicate-delivery reordering distance,
// small enough that a long-lived node never grows it.
const dedupWindow = 64

// serve decodes request envelopes from sub and replies with fn's result.
// It exits when the subscription's channel closes (Unsubscribe or bus
// Close). A transport that duplicates deliveries (netsim's async path)
// re-presents the same envelope; the reply-to topic is unique per
// request, so a bounded ring of recent reply-to keys suppresses the
// duplicate instead of measuring (and replying, and spending energy)
// twice for one command.
func (n *Node) serve(b *bus.Bus, sub *bus.Subscription, fn func(body []byte) (any, error)) {
	defer n.serveWG.Done()
	seen := make(map[string]bool, dedupWindow)
	var order []string
	for msg := range sub.C {
		var env struct {
			ReplyTo string          `json:"replyTo"`
			Body    json.RawMessage `json:"body"`
		}
		if err := json.Unmarshal(msg.Payload, &env); err != nil {
			continue
		}
		//lint:ignore errcheck energy accounting is best-effort in the command loop; an unknown radio kind only skips the charge
		_ = n.Meter.ChargeRx(n.Radio, len(msg.Payload))
		if env.ReplyTo != "" {
			if seen[env.ReplyTo] {
				// The radio already paid to hear it; don't serve it again.
				obsDuplicateCmds.Inc()
				continue
			}
			seen[env.ReplyTo] = true
			order = append(order, env.ReplyTo)
			if len(order) > dedupWindow {
				delete(seen, order[0])
				order = order[1:]
			}
		}
		obsServedCmds.Inc()
		reply, err := fn(env.Body)
		if err != nil || env.ReplyTo == "" {
			continue
		}
		raw, err := json.Marshal(reply)
		if err != nil {
			continue
		}
		//lint:ignore errcheck energy accounting is best-effort in the command loop; an unknown radio kind only skips the charge
		_ = n.Meter.ChargeTx(n.Radio, len(raw))
		//lint:ignore errcheck reply delivery is best-effort by contract; the requester may already have timed out
		_ = b.Publish(env.ReplyTo, raw)
	}
}

func (n *Node) handleMeasure(body []byte) (any, error) {
	var req MeasureRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	return n.MeasureField(sensor.Kind(req.Kind))
}

func (n *Node) handlePosition([]byte) (any, error) {
	return PositionReply{NodeID: n.ID, GridIdx: n.GridIndex()}, nil
}

func (n *Node) handleStatus([]byte) (any, error) {
	return StatusReply{
		NodeID: n.ID, GridIdx: n.GridIndex(),
		BatteryFrac: n.Battery.FractionRemaining(),
		EnergyMJ:    n.Meter.TotalMJ(),
	}, nil
}

// --- On-device context processing ----------------------------------------------

// ContextReport is the node's shared context snapshot (already
// privacy-filtered: it carries derived context, not raw samples — itself a
// privacy measure).
type ContextReport struct {
	NodeID   string               `json:"nodeId"`
	Activity contextproc.Activity `json:"activity"`
	Indoor   bool                 `json:"indoor"`
	Stress   float64              `json:"stress"`
}

// SenseContext runs the node's context determination: it collects an
// accelerometer window (optionally via the temporal-compressive pipeline
// to save energy), classifies activity, derives IsIndoor from single GPS +
// WiFi probes, and estimates stress from the microphone level.
//
// When pipe is non-nil only pipe.M of the window's samples are charged to
// the battery — the compressive duty cycle.
func (n *Node) SenseContext(windowLen int, rateHz float64, pipe *contextproc.Pipeline) (ContextReport, error) {
	accels := n.Probes.ByKind(sensor.Accelerometer)
	if len(accels) == 0 {
		return ContextReport{}, fmt.Errorf("node %s: no accelerometer", n.ID)
	}
	obsContextRuns.Inc()
	window, err := accels[0].CollectAxis(windowLen, 2)
	if err != nil {
		return ContextReport{}, err
	}
	var act contextproc.Activity
	if pipe != nil {
		if err := n.Meter.ChargeSamples(sensor.Accelerometer, pipe.M); err != nil {
			return ContextReport{}, err
		}
		n.mu.Lock()
		rng := rand.New(rand.NewSource(n.rng.Int63()))
		n.mu.Unlock()
		xhat, _, err := pipe.Reconstruct(window, rng)
		if err != nil {
			return ContextReport{}, err
		}
		f, err := contextproc.Extract(xhat, rateHz)
		if err != nil {
			return ContextReport{}, err
		}
		act = contextproc.ClassifyActivity(f)
	} else {
		if err := n.Meter.ChargeSamples(sensor.Accelerometer, windowLen); err != nil {
			return ContextReport{}, err
		}
		f, err := contextproc.Extract(window, rateHz)
		if err != nil {
			return ContextReport{}, err
		}
		act = contextproc.ClassifyActivity(f)
	}
	// IsIndoor from one GPS fix + one WiFi scan.
	var envReading contextproc.EnvReading
	if gps := n.Probes.ByKind(sensor.GPS); len(gps) > 0 {
		s := gps[0].Next()
		envReading.GPSSatellites, envReading.GPSAccuracyM = s.Values[0], s.Values[1]
		//lint:ignore errcheck context sampling energy is best-effort accounting; it must not veto the context report
		_ = n.Meter.ChargeSamples(sensor.GPS, 1)
	}
	if wifi := n.Probes.ByKind(sensor.WiFi); len(wifi) > 0 {
		s := wifi[0].Next()
		envReading.WiFiRSSIdBm, envReading.WiFiAPCount = s.Values[0], s.Values[1]
		//lint:ignore errcheck context sampling energy is best-effort accounting; it must not veto the context report
		_ = n.Meter.ChargeSamples(sensor.WiFi, 1)
	}
	stress := 0.0
	if mic := n.Probes.ByKind(sensor.Microphone); len(mic) > 0 {
		s := mic[0].Next()
		//lint:ignore errcheck context sampling energy is best-effort accounting; it must not veto the context report
		_ = n.Meter.ChargeSamples(sensor.Microphone, 1)
		stress = contextproc.StressIndex(s.Values[0], act)
	}
	return ContextReport{
		NodeID:   n.ID,
		Activity: act,
		Indoor:   contextproc.IsIndoor(envReading),
		Stress:   stress,
	}, nil
}
