package node

import (
	"math"
	"testing"
	"time"

	"math/rand"

	"repro/internal/basis"
	"repro/internal/bus"
	"repro/internal/contextproc"
	"repro/internal/mobility"
	"repro/internal/sensor"
)

// fakeEnv is a constant-valued 8×8 environment over a 80×80 m area.
type fakeEnv struct{ value float64 }

func (f fakeEnv) FieldValue(kind sensor.Kind, gridIdx int) float64 { return f.value }
func (f fakeEnv) GridDims() (int, int)                             { return 8, 8 }
func (f fakeEnv) AreaDims() (float64, float64)                     { return 80, 80 }

func newTestNode(t *testing.T, id string) *Node {
	t.Helper()
	n, err := New(Config{ID: id, Seed: 42, Profile: sensor.ProfileMidrange},
		fakeEnv{value: 21.5},
		mobility.Static{P: mobility.Point{X: 35, Y: 15}})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	env := fakeEnv{}
	mob := mobility.Static{}
	if _, err := New(Config{}, env, mob); err == nil {
		t.Fatal("want ID error")
	}
	if _, err := New(Config{ID: "n"}, nil, mob); err == nil {
		t.Fatal("want env error")
	}
	if _, err := New(Config{ID: "n"}, env, nil); err == nil {
		t.Fatal("want mobility error")
	}
}

func TestGridIndexFromPosition(t *testing.T) {
	n := newTestNode(t, "n0")
	// Position (35,15) in 80×80 m on an 8×8 grid → col 3, row 1 → 3*8+1.
	if got := n.GridIndex(); got != 3*8+1 {
		t.Fatalf("grid index %d, want %d", got, 3*8+1)
	}
}

func TestMeasureFieldValueAndEnergy(t *testing.T) {
	n := newTestNode(t, "n0")
	before := n.Meter.TotalMJ()
	r, err := n.MeasureField(sensor.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	if r.Denied {
		t.Fatal("temperature sharing should be allowed by default")
	}
	if math.Abs(r.Value-21.5) > 1.5 {
		t.Fatalf("measured %v, truth 21.5", r.Value)
	}
	if r.Sigma <= 0 {
		t.Fatal("sigma not reported")
	}
	if n.Meter.TotalMJ() <= before {
		t.Fatal("sampling was free")
	}
	// Reading is logged locally.
	if n.Store.Len("n0/temperature") != 1 {
		t.Fatal("reading not logged")
	}
}

func TestMeasureFieldUnknownKind(t *testing.T) {
	n := newTestNode(t, "n0")
	if _, err := n.MeasureField(sensor.Kind("sonar")); err == nil {
		t.Fatal("want no-probe error")
	}
}

func TestMeasureFieldPrivacyDenied(t *testing.T) {
	n := newTestNode(t, "n0")
	n.Policy.SetShare(sensor.Temperature, false)
	r, err := n.MeasureField(sensor.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Denied {
		t.Fatal("policy denial not honored")
	}
	// Local log still happens (the user keeps their own data).
	if n.Store.Len("n0/temperature") != 1 {
		t.Fatal("local logging should be unaffected by sharing policy")
	}
}

func TestBusMeasureRoundTrip(t *testing.T) {
	n := newTestNode(t, "n0")
	b := bus.New()
	if err := n.AttachBus(b, "nc0"); err != nil {
		t.Fatal(err)
	}
	defer n.Detach()
	var reading FieldReading
	err := bus.Request(b, MeasureTopic("nc0", "n0"),
		MeasureRequest{Kind: string(sensor.Temperature)}, &reading, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reading.NodeID != "n0" || math.Abs(reading.Value-21.5) > 1.5 {
		t.Fatalf("reading %+v", reading)
	}
	var pos PositionReply
	if err := bus.Request(b, PositionTopic("nc0", "n0"), struct{}{}, &pos, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if pos.GridIdx != 3*8+1 {
		t.Fatalf("position %+v", pos)
	}
	// Radio energy was charged for the exchange.
	bd := n.Meter.Breakdown()
	if bd["tx/wifi"] == 0 || bd["rx/wifi"] == 0 {
		t.Fatalf("radio energy not charged: %v", bd)
	}
}

// TestServeSuppressesDuplicateRequests publishes the exact same request
// envelope twice — what netsim's async duplicate knob does to the bus —
// and asserts the node serves it once: one reply, one measurement.
func TestServeSuppressesDuplicateRequests(t *testing.T) {
	n := newTestNode(t, "n0")
	b := bus.New()
	defer b.Close()
	if err := n.AttachBus(b, "nc0"); err != nil {
		t.Fatal(err)
	}
	defer n.Detach()
	reply, err := b.Subscribe("dup/reply", 4)
	if err != nil {
		t.Fatal(err)
	}
	env := []byte(`{"replyTo":"dup/reply","body":{"kind":"temperature"}}`)
	for i := 0; i < 2; i++ {
		if err := b.Publish(MeasureTopic("nc0", "n0"), env); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-reply.C:
	case <-time.After(2 * time.Second):
		t.Fatal("no reply to the first delivery")
	}
	select {
	case <-reply.C:
		t.Fatal("duplicate delivery was served again")
	case <-time.After(100 * time.Millisecond):
	}
	// A different request (fresh reply-to) is served normally.
	var reading FieldReading
	if err := bus.Request(b, MeasureTopic("nc0", "n0"),
		MeasureRequest{Kind: string(sensor.Temperature)}, &reading, 2*time.Second); err != nil {
		t.Fatalf("fresh request after duplicates: %v", err)
	}
}

func TestDetachStopsServing(t *testing.T) {
	n := newTestNode(t, "n0")
	b := bus.New()
	if err := n.AttachBus(b, "nc0"); err != nil {
		t.Fatal(err)
	}
	n.Detach()
	var reading FieldReading
	err := bus.Request(b, MeasureTopic("nc0", "n0"),
		MeasureRequest{Kind: "temperature"}, &reading, 50*time.Millisecond)
	if err == nil {
		t.Fatal("detached node still serving")
	}
}

func TestSenseContextFullWindow(t *testing.T) {
	n, err := New(Config{ID: "n1", Seed: 7, Motion: sensor.MotionDriving},
		fakeEnv{}, mobility.Static{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.SenseContext(256, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Activity != contextproc.ActivityDriving {
		t.Fatalf("activity %s, want driving", rep.Activity)
	}
	if rep.Stress <= 0 {
		t.Fatal("stress not derived")
	}
}

func TestSenseContextCompressiveSavesEnergy(t *testing.T) {
	mk := func() *Node {
		n, err := New(Config{ID: "n1", Seed: 7, Motion: sensor.MotionDriving},
			fakeEnv{}, mobility.Static{})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	full := mk()
	if _, err := full.SenseContext(256, 64, nil); err != nil {
		t.Fatal(err)
	}
	comp := mk()
	dft, err := basis.OperatorFor(basis.KindDFT, 256)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := contextproc.NewPipeline(dft, 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := comp.SenseContext(256, 64, pipe)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Activity != contextproc.ActivityDriving {
		t.Fatalf("compressive activity %s", rep.Activity)
	}
	fa := full.Meter.Breakdown()["sense/accelerometer"]
	ca := comp.Meter.Breakdown()["sense/accelerometer"]
	if ca >= fa {
		t.Fatalf("compressive accel energy %v not below full %v", ca, fa)
	}
	// 30/256 duty cycle → ~88% accelerometer savings.
	if ca/fa > 0.15 {
		t.Fatalf("duty cycle energy ratio %v, want ~30/256", ca/fa)
	}
}

func TestMoveAdvancesPosition(t *testing.T) {
	env := fakeEnv{}
	mobRng, err := mobility.NewGaussMarkov(newRand(3), 80, 80, 0.7, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{ID: "n2", Seed: 3}, env, mobRng)
	if err != nil {
		t.Fatal(err)
	}
	p0 := n.Move(0)
	p1 := n.Move(10)
	if p0 == p1 {
		t.Fatal("node did not move")
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
