package core

import (
	"testing"

	"repro/internal/contextproc"
	"repro/internal/field"
	"repro/internal/sensor"
)

func smallOpts() Options {
	return Options{
		FieldW: 16, FieldH: 16,
		ZoneRows: 2, ZoneCols: 2,
		NCsPerZone: 1, NodesPerNC: 4,
		Seed: 11,
	}
}

func plumeTruth() *field.Field {
	return field.GenPlumes(16, 16, 12, []field.Plume{
		{Row: 4, Col: 4, Sigma: 2, Amplitude: 30},
		{Row: 11, Col: 12, Sigma: 3, Amplitude: 20},
	})
}

func TestNewValidation(t *testing.T) {
	bad := []Options{
		{},
		{FieldW: 8, FieldH: 8},
		{FieldW: 8, FieldH: 8, ZoneRows: 3, ZoneCols: 2},
		{FieldW: 8, FieldH: 8, ZoneRows: 2, ZoneCols: 2, NodesPerNC: -1},
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestNewBuildsFullHierarchy(t *testing.T) {
	sd, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	if len(sd.Public.LCs) != 4 {
		t.Fatalf("local clouds %d, want 4", len(sd.Public.LCs))
	}
	if len(sd.Nodes) != 16 {
		t.Fatalf("nodes %d, want 16", len(sd.Nodes))
	}
	if len(sd.Buses) != 4 {
		t.Fatalf("buses %d, want 4", len(sd.Buses))
	}
}

func TestSetTruthShape(t *testing.T) {
	sd, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	if err := sd.SetTruth(field.New(4, 4)); err == nil {
		t.Fatal("want shape error")
	}
	if err := sd.SetTruth(plumeTruth()); err != nil {
		t.Fatal(err)
	}
	if sd.Truth.At(4, 4) < 30 {
		t.Fatal("truth not installed")
	}
}

func TestRunCampaignUniform(t *testing.T) {
	sd, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	if err := sd.SetTruth(plumeTruth()); err != nil {
		t.Fatal(err)
	}
	res, err := sd.RunCampaign(CampaignConfig{TotalM: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalNMSE > 0.05 {
		t.Fatalf("campaign NMSE %v", res.GlobalNMSE)
	}
	if res.Measurements == 0 || len(res.Zones) != 4 || len(res.ZoneNMSE) != 4 {
		t.Fatalf("result %+v", res)
	}
	if res.NodesUsed == 0 {
		t.Fatal("no mobile nodes participated")
	}
	// Hotspot localization on the assembled field.
	r, c, _ := res.Reconstructed.MaxLoc()
	if (r-4)*(r-4)+(c-4)*(c-4) > 4 {
		t.Fatalf("hotspot at (%d,%d), truth (4,4)", r, c)
	}
	// Bus traffic and node energy were accounted.
	if sd.BusBytes() == 0 {
		t.Fatal("no bus bytes counted")
	}
	if sd.TotalEnergyMJ() == 0 {
		t.Fatal("no energy charged")
	}
}

func TestRunCampaignAdaptiveBeatsUniformOnLocalizedField(t *testing.T) {
	// A field active in only one zone: adaptive budgeting should not lose
	// to uniform at equal total budget (averaged over repeats).
	truth := field.GenPlumes(16, 16, 5, []field.Plume{{Row: 12, Col: 12, Sigma: 1.8, Amplitude: 50}})
	wins := 0
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		opts := smallOpts()
		opts.Seed = int64(100 + trial)
		sd, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := sd.SetTruth(truth); err != nil {
			t.Fatal(err)
		}
		uni, err := sd.RunCampaign(CampaignConfig{TotalM: 60})
		if err != nil {
			t.Fatal(err)
		}
		ada, err := sd.RunCampaign(CampaignConfig{TotalM: 60, Adaptive: true, Prior: truth})
		if err != nil {
			t.Fatal(err)
		}
		if ada.GlobalNMSE <= uni.GlobalNMSE {
			wins++
		}
		// Adaptive plan concentrates on zone 3 (bottom-right).
		if ada.Plan[3] <= ada.Plan[0] {
			t.Fatalf("adaptive plan %v does not favor the active zone", ada.Plan)
		}
		sd.Close()
	}
	if wins < trials/2 {
		t.Fatalf("adaptive beat uniform in only %d/%d trials", wins, trials)
	}
}

func TestRunCampaignValidation(t *testing.T) {
	sd, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	if _, err := sd.RunCampaign(CampaignConfig{}); err == nil {
		t.Fatal("want budget error")
	}
	if _, err := sd.RunCampaign(CampaignConfig{TotalM: 40, Adaptive: true}); err == nil {
		t.Fatal("want prior error")
	}
}

func TestSetCriticality(t *testing.T) {
	sd, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	if err := sd.SetCriticality(2, 5); err != nil {
		t.Fatal(err)
	}
	if err := sd.SetCriticality(99, 5); err == nil {
		t.Fatal("want unknown-zone error")
	}
	for _, lc := range sd.Public.LCs {
		if lc.Env.Zone().ID == 2 && lc.Env.Zone().Criticality != 5 {
			t.Fatal("criticality not applied")
		}
	}
}

func TestTickMovesNodes(t *testing.T) {
	sd, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	before := make([]int, len(sd.Nodes))
	for i, n := range sd.Nodes {
		before[i] = n.GridIndex()
	}
	for i := 0; i < 30; i++ {
		sd.Tick(5)
	}
	moved := 0
	for i, n := range sd.Nodes {
		if n.GridIndex() != before[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no node changed cell after 150 s of movement")
	}
	if sd.TotalEnergyMJ() == 0 {
		t.Fatal("idle energy not charged")
	}
}

func TestGroupContexts(t *testing.T) {
	opts := smallOpts()
	opts.NodesPerNC = 2
	sd, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	reports, err := sd.GroupContexts(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(sd.Nodes) {
		t.Fatalf("reports %d for %d nodes", len(reports), len(sd.Nodes))
	}
	members := make([]contextproc.MemberContext, len(reports))
	for i, r := range reports {
		members[i] = contextproc.MemberContext{
			Member: r.NodeID, Activity: r.Activity, Stress: r.Stress, Indoor: r.Indoor,
		}
	}
	g, err := contextproc.FuseGroup(members)
	if err != nil {
		t.Fatal(err)
	}
	// All nodes walk by construction.
	if g.MajorityAct != contextproc.ActivityWalking {
		t.Fatalf("group activity %s", g.MajorityAct)
	}
}

func TestCampaignWithGLSAndKindDefaults(t *testing.T) {
	sd, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	if err := sd.SetTruth(plumeTruth()); err != nil {
		t.Fatal(err)
	}
	cfg := CampaignConfig{TotalM: 80}
	cfg.Recon.UseGLS = true
	res, err := sd.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalNMSE > 0.1 {
		t.Fatalf("GLS campaign NMSE %v", res.GlobalNMSE)
	}
	_ = sensor.Temperature // default kind exercised above
}

func TestDirectoryTracksHierarchy(t *testing.T) {
	sd, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	brokers := sd.Directory.ByKind("broker")
	nodes := sd.Directory.ByKind("node")
	if len(brokers) != 4 {
		t.Fatalf("directory brokers %d, want 4", len(brokers))
	}
	if len(nodes) != 16 {
		t.Fatalf("directory nodes %d, want 16", len(nodes))
	}
	// Every node entry names its broker.
	for _, n := range nodes {
		if n.Metadata["broker"] == "" {
			t.Fatalf("node %s has no broker metadata", n.Name)
		}
	}
	sd.Close()
	if got := sd.Directory.ByKind("node"); len(got) != 0 {
		t.Fatalf("nodes still announced after Close: %d", len(got))
	}
}

func TestMultipleNCsPerZone(t *testing.T) {
	opts := smallOpts()
	opts.NCsPerZone = 2
	opts.NodesPerNC = 2
	sd, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	if len(sd.Buses) != 8 {
		t.Fatalf("buses %d, want 8 (2 NCs x 4 zones)", len(sd.Buses))
	}
	if err := sd.SetTruth(plumeTruth()); err != nil {
		t.Fatal(err)
	}
	res, err := sd.RunCampaign(CampaignConfig{TotalM: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalNMSE > 0.05 {
		t.Fatalf("multi-NC campaign NMSE %v", res.GlobalNMSE)
	}
}

func TestRunTemporalCampaignJointBeatsStatic(t *testing.T) {
	sd, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	evolve := func(step int) *field.Field {
		return field.GenPlumes(16, 16, 12, []field.Plume{{
			Row: 4 + 0.4*float64(step), Col: 4 + 0.3*float64(step),
			Sigma: 2.2, Amplitude: 30,
		}})
	}
	res, err := sd.RunTemporalCampaign(TemporalCampaignConfig{
		Steps: 6, TotalM: 48, Evolve: evolve, Compare: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fields) != 6 || len(res.PerStepNMSE) != 6 {
		t.Fatalf("result shape %+v", res)
	}
	if res.MeanNMSE >= res.MeanStatic {
		t.Fatalf("joint %v not below static %v on identical measurements",
			res.MeanNMSE, res.MeanStatic)
	}
	if res.MeanNMSE > 0.1 {
		t.Fatalf("joint NMSE %v too large", res.MeanNMSE)
	}
	// The recovered final field localizes the moved plume.
	r, c, _ := res.Fields[5].MaxLoc()
	if (r-6)*(r-6)+(c-6)*(c-6) > 8 {
		t.Fatalf("final hotspot at (%d,%d), truth near (6,6)", r, c)
	}
}

func TestRunTemporalCampaignValidation(t *testing.T) {
	sd, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	if _, err := sd.RunTemporalCampaign(TemporalCampaignConfig{Steps: 3, TotalM: 40}); err == nil {
		t.Fatal("want Evolve error")
	}
	evolve := func(int) *field.Field { return field.New(16, 16) }
	if _, err := sd.RunTemporalCampaign(TemporalCampaignConfig{Evolve: evolve}); err == nil {
		t.Fatal("want Steps/TotalM error")
	}
}

func TestContextServicePublishAndQuery(t *testing.T) {
	opts := smallOpts()
	opts.NodesPerNC = 2
	sd, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	reports, err := sd.PublishContexts(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(sd.Nodes) {
		t.Fatalf("published %d of %d", len(reports), len(sd.Nodes))
	}
	// All nodes walk by construction → the walking filter matches all.
	walkers, err := sd.QueryContexts("activity == 'walking'")
	if err != nil {
		t.Fatal(err)
	}
	if len(walkers) != len(sd.Nodes) {
		t.Fatalf("walking filter matched %d of %d", len(walkers), len(sd.Nodes))
	}
	// An impossible filter matches none.
	none, err := sd.QueryContexts("stress > 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("impossible filter matched %d", len(none))
	}
	// A single-node filter matches exactly one.
	one, err := sd.QueryContexts("node == '" + sd.Nodes[0].ID + "'")
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].NodeID != sd.Nodes[0].ID {
		t.Fatalf("node filter got %v", one)
	}
	// Bad filter reports a compile error.
	if _, err := sd.QueryContexts("((("); err == nil {
		t.Fatal("want compile error")
	}
	// Retained delivery: a late subscriber on any NC bus sees a context.
	b, brokerID, ok := sd.busFor(sd.Nodes[0].ID)
	if !ok {
		t.Fatal("busFor failed")
	}
	if _, ok := b.Retained(ContextTopic(brokerID, sd.Nodes[0].ID)); !ok {
		t.Fatal("context not retained on the bus")
	}
}
