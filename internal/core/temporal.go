package core

import (
	"errors"
	"fmt"

	"repro/internal/basis"
	"repro/internal/cs"
	"repro/internal/field"
	"repro/internal/sensor"
)

// TemporalCampaignConfig parameterizes a multi-round campaign whose zone
// sequences are decoded jointly in the temporal⊗spatial basis — the
// middleware-level realization of the paper's "spatio-temporal
// compressive sensing".
type TemporalCampaignConfig struct {
	Kind    sensor.Kind                 // field quantity (default temperature)
	Steps   int                         // sensing rounds
	TotalM  int                         // measurement budget per round (split uniformly)
	TickS   float64                     // node movement between rounds (default 30 s)
	Evolve  func(step int) *field.Field // the changing world; required
	JointK  int                         // joint sparsity per zone (0 = heuristic)
	Compare bool                        // also decode each round independently for comparison
}

// TemporalCampaignResult reports a completed multi-round campaign.
type TemporalCampaignResult struct {
	PerStepNMSE   []float64      // joint decoding, per round
	MeanNMSE      float64        // joint decoding, averaged
	PerStepStatic []float64      // per-round independent decoding (if Compare)
	MeanStatic    float64        // averaged (if Compare)
	Fields        []*field.Field // joint-decoded global field per round
}

// RunTemporalCampaign senses Steps rounds of the evolving world, then
// decodes each zone's round sequence jointly. With Compare it also runs
// the per-round independent decoder on the same measurements so the gain
// from temporal correlation is measured on identical data.
func (sd *SenseDroid) RunTemporalCampaign(cfg TemporalCampaignConfig) (*TemporalCampaignResult, error) {
	if cfg.Evolve == nil {
		return nil, errors.New("core: temporal campaign needs an Evolve function")
	}
	if cfg.Steps <= 0 || cfg.TotalM <= 0 {
		return nil, errors.New("core: temporal campaign needs positive Steps and TotalM")
	}
	if cfg.Kind == "" {
		cfg.Kind = sensor.Temperature
	}
	if cfg.TickS <= 0 {
		cfg.TickS = 30
	}
	plan := sd.Public.UniformBudget(cfg.TotalM)

	// Phase 1: sense all rounds, accumulating per-zone joint measurements
	// and the truth snapshots for accuracy accounting.
	type zoneSeq struct {
		jm     cs.JointMeasurements
		truths []*field.Field // zone-local truth per step
	}
	seqs := make(map[int]*zoneSeq, len(sd.Public.LCs))
	for _, lc := range sd.Public.LCs {
		z := lc.Env.Zone()
		seqs[z.ID] = &zoneSeq{jm: cs.JointMeasurements{T: cfg.Steps, N: z.W * z.H}}
	}
	for step := 0; step < cfg.Steps; step++ {
		truth := cfg.Evolve(step)
		if err := sd.SetTruth(truth); err != nil {
			return nil, err
		}
		sd.Tick(cfg.TickS)
		for _, lc := range sd.Public.LCs {
			z := lc.Env.Zone()
			m := plan[z.ID]
			if m <= 0 {
				return nil, fmt.Errorf("core: zone %d has no budget", z.ID)
			}
			g, err := lc.Gather(cfg.Kind, m)
			if err != nil {
				return nil, fmt.Errorf("core: step %d zone %d: %w", step, z.ID, err)
			}
			zs := seqs[z.ID]
			n := z.W * z.H
			for i, loc := range g.Locs {
				zs.jm.Locs = append(zs.jm.Locs, step*n+loc)
				zs.jm.Y = append(zs.jm.Y, g.Values[i])
			}
			zs.truths = append(zs.truths, field.Extract(sd.Truth, z))
		}
	}

	// Phase 2: joint decode per zone, assemble per-step global fields.
	res := &TemporalCampaignResult{
		PerStepNMSE: make([]float64, cfg.Steps),
		Fields:      make([]*field.Field, cfg.Steps),
	}
	if cfg.Compare {
		res.PerStepStatic = make([]float64, cfg.Steps)
	}
	for step := range res.Fields {
		res.Fields[step] = field.New(sd.Opts.FieldW, sd.Opts.FieldH)
	}
	// NMSE accumulators: numerator/denominator per step over all zones.
	num := make([]float64, cfg.Steps)
	den := make([]float64, cfg.Steps)
	numS := make([]float64, cfg.Steps)
	for _, lc := range sd.Public.LCs {
		z := lc.Env.Zone()
		zs := seqs[z.ID]
		proto := field.New(z.W, z.H)
		phi, err := proto.Operator2D(basis.KindDCT)
		if err != nil {
			return nil, err
		}
		recovered, _, err := cs.DecodeSpatioTemporal(phi, zs.jm, cfg.JointK)
		if err != nil {
			return nil, fmt.Errorf("core: zone %d joint decode: %w", z.ID, err)
		}
		n := z.W * z.H
		for step := 0; step < cfg.Steps; step++ {
			sub, err := field.FromVector(z.W, z.H, recovered[step])
			if err != nil {
				return nil, err
			}
			if err := field.Insert(res.Fields[step], z, sub); err != nil {
				return nil, err
			}
			truth := zs.truths[step].Data
			for i := 0; i < n; i++ {
				d := truth[i] - recovered[step][i]
				num[step] += d * d
				den[step] += truth[i] * truth[i]
			}
		}
		if cfg.Compare {
			// Per-step independent decoding of the same measurements.
			for step := 0; step < cfg.Steps; step++ {
				var locs []int
				var y []float64
				for i, jl := range zs.jm.Locs {
					if jl/n == step {
						locs = append(locs, jl%n)
						y = append(y, zs.jm.Y[i])
					}
				}
				if len(locs) == 0 {
					continue
				}
				k := len(locs) / 3
				if k < 1 {
					k = 1
				}
				r, err := cs.OMPOp(phi, locs, y, k, 1e-9)
				if err != nil {
					return nil, err
				}
				truth := zs.truths[step].Data
				for i := 0; i < n; i++ {
					d := truth[i] - r.Xhat[i]
					numS[step] += d * d
				}
			}
		}
	}
	for step := 0; step < cfg.Steps; step++ {
		if den[step] > 0 {
			res.PerStepNMSE[step] = num[step] / den[step]
			res.MeanNMSE += res.PerStepNMSE[step]
			if cfg.Compare {
				res.PerStepStatic[step] = numS[step] / den[step]
				res.MeanStatic += res.PerStepStatic[step]
			}
		}
	}
	res.MeanNMSE /= float64(cfg.Steps)
	if cfg.Compare {
		res.MeanStatic /= float64(cfg.Steps)
	}
	return res, nil
}
