package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/bus"
	"repro/internal/node"
	"repro/internal/query"
)

// Context service: nodes publish their context snapshots as *retained*
// messages on their NanoCloud bus ("<broker>/ctx/<node>"), so any
// subscriber — including one that joins late — sees the current group
// state; consumers pull "only the relevant information" through the query
// filter language. This is the paper's "Query and Filtering" feature
// running over the middleware's own communication layer.

// ContextTopic returns the retained-context topic for a node.
func ContextTopic(brokerID, nodeID string) string {
	return bus.NodeContextTopic(brokerID, nodeID)
}

// PublishContexts runs on-device context sensing on every node and
// publishes each report retained on its NanoCloud bus. It returns the
// reports in node order.
func (sd *SenseDroid) PublishContexts(windowLen int, rateHz float64) ([]node.ContextReport, error) {
	reports := make([]node.ContextReport, 0, len(sd.Nodes))
	for _, n := range sd.Nodes {
		rep, err := n.SenseContext(windowLen, rateHz, nil)
		if err != nil {
			return nil, err
		}
		b, brokerID, ok := sd.busFor(n.ID)
		if !ok {
			return nil, fmt.Errorf("core: no bus for node %s", n.ID)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			return nil, err
		}
		if err := b.PublishRetained(ContextTopic(brokerID, n.ID), raw); err != nil {
			return nil, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// QueryContexts evaluates a filter expression against every retained
// context report in the deployment and returns the matches. Available
// fields: node (string), activity (string), stress (number),
// indoor (bool).
func (sd *SenseDroid) QueryContexts(src string) ([]node.ContextReport, error) {
	flt, err := query.Compile(src)
	if err != nil {
		return nil, err
	}
	var out []node.ContextReport
	for _, n := range sd.Nodes {
		b, brokerID, ok := sd.busFor(n.ID)
		if !ok {
			continue
		}
		msg, ok := b.Retained(ContextTopic(brokerID, n.ID))
		if !ok {
			continue // node has not published yet
		}
		var rep node.ContextReport
		if err := json.Unmarshal(msg.Payload, &rep); err != nil {
			continue
		}
		env := query.Env{
			"node":     rep.NodeID,
			"activity": string(rep.Activity),
			"stress":   rep.Stress,
			"indoor":   rep.Indoor,
		}
		match, err := flt.Eval(env)
		if err != nil {
			return nil, fmt.Errorf("core: filter %q on %s: %w", src, rep.NodeID, err)
		}
		if match {
			out = append(out, rep)
		}
	}
	return out, nil
}
