// Package core is the SenseDroid middleware façade: it constructs the full
// Fig. 1 hierarchy (public cloud → local clouds → NanoCloud brokers →
// mobile nodes with probes, privacy, energy and mobility), moves simulated
// time, and exposes the collaborative compressive sensing campaign API
// that the examples and experiments drive.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/bus"
	"repro/internal/cloud"
	"repro/internal/cs"
	"repro/internal/discovery"
	"repro/internal/field"
	"repro/internal/mobility"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sensor"
)

// Campaign observability handles (no-ops until obs.Enable).
var (
	obsCampaigns    = obs.GetCounter("core.campaign.rounds")
	obsCampaignM    = obs.GetCounter("core.campaign.measurements")
	obsCampaignNMSE = obs.GetGauge("core.campaign.nmse.global")
)

// Options sizes a SenseDroid deployment.
type Options struct {
	FieldW, FieldH     int     // global grid
	ZoneRows, ZoneCols int     // hierarchy: ZoneRows×ZoneCols local clouds
	NCsPerZone         int     // NanoCloud brokers per local cloud
	NodesPerNC         int     // mobile nodes per NanoCloud
	MetersPerCell      float64 // physical scale (default 10 m)
	Seed               int64
	Timeout            time.Duration // broker↔node request timeout
}

// SenseDroid is a deployed middleware instance over a live ground-truth
// field. Mutating the truth (SetTruth) is the simulation's stand-in for
// the physical world changing.
type SenseDroid struct {
	Opts      Options
	Truth     *field.Field
	Public    *cloud.PublicCloud
	Nodes     []*node.Node
	Buses     []*bus.Bus
	Directory *discovery.Registry // who is alive where (brokers + nodes)

	envs       []*cloud.ZoneEnv
	busBytes   atomic.Int64
	nodeBus    map[string]*bus.Bus
	nodeBroker map[string]string
	brokerBus  map[string]*bus.Bus
	brokers    map[string]*broker.Broker
}

// busFor returns the NanoCloud bus and broker ID a node is attached to.
func (sd *SenseDroid) busFor(nodeID string) (*bus.Bus, string, bool) {
	b, ok := sd.nodeBus[nodeID]
	if !ok {
		return nil, "", false
	}
	return b, sd.nodeBroker[nodeID], true
}

// BusOf returns the NanoCloud bus a broker runs on — the attachment
// point for transport interceptors (the chaos harness routes each NC's
// bus through a fault-injected netsim network).
func (sd *SenseDroid) BusOf(brokerID string) (*bus.Bus, bool) {
	b, ok := sd.brokerBus[brokerID]
	return b, ok
}

// BrokerByID returns a broker by its hierarchical ID ("lc<z>/nc<n>").
func (sd *SenseDroid) BrokerByID(id string) (*broker.Broker, bool) {
	br, ok := sd.brokers[id]
	return br, ok
}

// BrokerIDs returns every broker ID, sorted.
func (sd *SenseDroid) BrokerIDs() []string {
	ids := make([]string, 0, len(sd.brokers))
	for id := range sd.brokers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// NodesOf returns the node IDs registered under a broker, sorted.
func (sd *SenseDroid) NodesOf(brokerID string) []string {
	var ids []string
	for nodeID, brID := range sd.nodeBroker {
		if brID == brokerID {
			ids = append(ids, nodeID)
		}
	}
	sort.Strings(ids)
	return ids
}

// New builds the full hierarchy. The initial ground truth is a zero field;
// call SetTruth before campaigns.
func New(opts Options) (*SenseDroid, error) {
	if opts.FieldW <= 0 || opts.FieldH <= 0 {
		return nil, errors.New("core: field dimensions must be positive")
	}
	if opts.ZoneRows <= 0 || opts.ZoneCols <= 0 {
		return nil, errors.New("core: zone grid must be positive")
	}
	if opts.FieldH%opts.ZoneRows != 0 || opts.FieldW%opts.ZoneCols != 0 {
		return nil, fmt.Errorf("core: %dx%d field not divisible into %dx%d zones",
			opts.FieldH, opts.FieldW, opts.ZoneRows, opts.ZoneCols)
	}
	if opts.NCsPerZone <= 0 {
		opts.NCsPerZone = 1
	}
	if opts.NodesPerNC < 0 {
		return nil, errors.New("core: negative node count")
	}
	if opts.MetersPerCell <= 0 {
		opts.MetersPerCell = 10
	}
	truth := field.New(opts.FieldW, opts.FieldH)
	zones, err := field.Partition(truth, opts.ZoneRows, opts.ZoneCols)
	if err != nil {
		return nil, err
	}
	sd := &SenseDroid{
		Opts: opts, Truth: truth,
		Directory:  discovery.NewRegistry(24 * time.Hour),
		nodeBus:    make(map[string]*bus.Bus),
		nodeBroker: make(map[string]string),
		brokerBus:  make(map[string]*bus.Bus),
		brokers:    make(map[string]*broker.Broker),
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	var lcs []*cloud.LocalCloud
	for _, z := range zones {
		env, err := cloud.NewZoneEnv(truth, z, opts.MetersPerCell)
		if err != nil {
			return nil, err
		}
		sd.envs = append(sd.envs, env)
		var brokers []*broker.Broker
		for nc := 0; nc < opts.NCsPerZone; nc++ {
			b := bus.New()
			b.AddHook(func(topic string, n int) { sd.busBytes.Add(int64(n)) })
			b.AddHook(bus.ObsHook())
			sd.Buses = append(sd.Buses, b)
			brID := fmt.Sprintf("lc%d/nc%d", z.ID, nc)
			br, err := broker.New(broker.Config{
				ID: brID, Seed: rng.Int63(), Timeout: opts.Timeout,
			}, b, env)
			if err != nil {
				return nil, err
			}
			if err := sd.Directory.Announce(discovery.Entry{
				Name: brID, Kind: "broker",
				Metadata: map[string]string{"zone": fmt.Sprint(z.ID)},
			}, 0); err != nil {
				return nil, err
			}
			aw, ah := env.AreaDims()
			for i := 0; i < opts.NodesPerNC; i++ {
				nodeID := fmt.Sprintf("%s/n%d", brID, i)
				mob, err := mobility.NewRandomWaypoint(
					rand.New(rand.NewSource(rng.Int63())), aw, ah, 0.8, 2.2, 2)
				if err != nil {
					return nil, err
				}
				nd, err := node.New(node.Config{
					ID:      nodeID,
					Seed:    rng.Int63(),
					Profile: sensor.RandomProfile(rng),
					Motion:  sensor.MotionWalking,
				}, env, mob)
				if err != nil {
					return nil, err
				}
				if err := nd.AttachBus(b, brID); err != nil {
					return nil, err
				}
				if err := br.Register(nodeID); err != nil {
					return nil, err
				}
				if err := sd.Directory.Announce(discovery.Entry{
					Name: nodeID, Kind: "node",
					Metadata: map[string]string{"broker": brID},
				}, 0); err != nil {
					return nil, err
				}
				sd.nodeBus[nodeID] = b
				sd.nodeBroker[nodeID] = brID
				sd.Nodes = append(sd.Nodes, nd)
			}
			sd.brokerBus[brID] = b
			sd.brokers[brID] = br
			brokers = append(brokers, br)
		}
		lc, err := cloud.NewLocalCloud(env, brokers...)
		if err != nil {
			return nil, err
		}
		lcs = append(lcs, lc)
	}
	pc, err := cloud.NewPublicCloud(opts.FieldW, opts.FieldH, lcs)
	if err != nil {
		return nil, err
	}
	sd.Public = pc
	return sd, nil
}

// SetTruth replaces the live ground-truth field (same dimensions).
func (sd *SenseDroid) SetTruth(f *field.Field) error {
	if f.W != sd.Opts.FieldW || f.H != sd.Opts.FieldH {
		return fmt.Errorf("core: truth %dx%d, want %dx%d", f.H, f.W, sd.Opts.FieldH, sd.Opts.FieldW)
	}
	copy(sd.Truth.Data, f.Data)
	return nil
}

// SetCriticality updates one zone's criticality weight for adaptive
// budgeting. Zone IDs follow field.Partition order.
func (sd *SenseDroid) SetCriticality(zoneID int, crit float64) error {
	for _, lc := range sd.Public.LCs {
		if lc.Env.Zone().ID == zoneID {
			lc.Env.SetCriticality(crit)
			return nil
		}
	}
	return fmt.Errorf("core: unknown zone %d", zoneID)
}

// Tick advances every node's mobility by dt seconds and charges idle
// energy.
func (sd *SenseDroid) Tick(dt float64) {
	for _, n := range sd.Nodes {
		n.Move(dt)
		n.Meter.ChargeIdle(dt)
	}
}

// BusBytes returns the total payload bytes that crossed all NanoCloud
// buses so far.
func (sd *SenseDroid) BusBytes() int64 { return sd.busBytes.Load() }

// TotalEnergyMJ sums all node meters.
func (sd *SenseDroid) TotalEnergyMJ() float64 {
	total := 0.0
	for _, n := range sd.Nodes {
		total += n.Meter.TotalMJ()
	}
	return total
}

// CampaignConfig parameterizes one collaborative sensing campaign.
type CampaignConfig struct {
	Kind       sensor.Kind // field quantity to map (default temperature)
	TotalM     int         // global measurement budget
	Adaptive   bool        // adaptive per-zone budgets vs uniform
	Prior      *field.Field
	EnergyFrac float64 // local-sparsity energy threshold (default 0.98)
	MinPerZone int     // adaptive floor (default 4)
	Recon      broker.ReconstructOptions
}

// CampaignResult reports a completed campaign.
type CampaignResult struct {
	Reconstructed *field.Field
	Plan          cloud.BudgetPlan
	Zones         map[int]*cloud.ZoneReport
	GlobalNMSE    float64
	ZoneNMSE      map[int]float64
	Measurements  int
	NodesUsed     int
	InfraUsed     int
	Denied        int
	BrokersFailed int // brokers lost across all zone gathers this round
	Shortfall     int // measurements the round came in under budget
}

// RunCampaign executes one full hierarchical sensing round: budget
// allocation, per-zone gather + reconstruction, global assembly, and
// accuracy accounting against the live truth.
func (sd *SenseDroid) RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	if cfg.Kind == "" {
		cfg.Kind = sensor.Temperature
	}
	if cfg.TotalM <= 0 {
		return nil, errors.New("core: campaign needs a positive budget")
	}
	if cfg.EnergyFrac <= 0 || cfg.EnergyFrac > 1 {
		cfg.EnergyFrac = 0.98
	}
	if cfg.MinPerZone <= 0 {
		cfg.MinPerZone = 4
	}
	var plan cloud.BudgetPlan
	if cfg.Adaptive {
		var err error
		plan, err = sd.Public.AdaptiveBudget(cfg.TotalM, cfg.Prior, cfg.EnergyFrac, cfg.MinPerZone)
		if err != nil {
			return nil, err
		}
	} else {
		plan = sd.Public.UniformBudget(cfg.TotalM)
	}
	global, reports, err := sd.Public.Assemble(cfg.Kind, plan, cfg.Recon)
	if err != nil {
		return nil, err
	}
	res := &CampaignResult{
		Reconstructed: global,
		Plan:          plan,
		Zones:         reports,
		GlobalNMSE:    cs.NMSE(sd.Truth.Data, global.Data),
		ZoneNMSE:      map[int]float64{},
	}
	for id, rep := range reports {
		sub := field.Extract(sd.Truth, rep.Zone)
		res.ZoneNMSE[id] = cs.NMSE(sub.Data, rep.Reconstruction.Field.Data)
		res.Measurements += len(rep.Reconstruction.Gather.Locs)
		res.NodesUsed += rep.Reconstruction.Gather.NodesUsed
		res.InfraUsed += rep.Reconstruction.Gather.InfraUsed
		res.Denied += rep.Reconstruction.Gather.Denied
		res.BrokersFailed += rep.Reconstruction.Gather.BrokersFailed
		res.Shortfall += rep.Reconstruction.Gather.Shortfall
	}
	obsCampaigns.Inc()
	obsCampaignM.Add(int64(res.Measurements))
	obsCampaignNMSE.Set(res.GlobalNMSE)
	return res, nil
}

// Close detaches all nodes and closes all buses.
func (sd *SenseDroid) Close() {
	for _, n := range sd.Nodes {
		n.Detach()
		sd.Directory.Withdraw(n.ID)
	}
	for _, b := range sd.Buses {
		b.Close()
	}
}

// GroupContexts runs on-device context sensing on every node and fuses the
// group view (the wellness use case).
func (sd *SenseDroid) GroupContexts(windowLen int, rateHz float64) ([]node.ContextReport, error) {
	out := make([]node.ContextReport, 0, len(sd.Nodes))
	for _, n := range sd.Nodes {
		rep, err := n.SenseContext(windowLen, rateHz, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}
