// Package opportunistic implements the Aquiba-style collaboration protocol
// the paper's related work builds on (Thepvilojanapong et al.): pedestrians
// that happen to be near each other form ad-hoc clusters, one
// representative per cluster senses and uploads, and the rest suppress
// their redundant reports — trading a little spatial resolution for large
// energy and traffic savings.
package opportunistic

import (
	"errors"
	"math"

	"repro/internal/mobility"
)

// Peer is one participating pedestrian at an instant.
type Peer struct {
	ID      string
	Pos     mobility.Point
	Battery float64 // remaining fraction, used by the battery election policy
}

// Clusters groups peers into connected components of the proximity graph:
// two peers are adjacent when within radius meters. Returned clusters are
// slices of indices into the input, each sorted ascending; the clusters
// themselves are ordered by their smallest member.
func Clusters(peers []Peer, radius float64) ([][]int, error) {
	if radius <= 0 {
		return nil, errors.New("opportunistic: radius must be positive")
	}
	n := len(peers)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	r2 := radius * radius
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := peers[i].Pos.X - peers[j].Pos.X
			dy := peers[i].Pos.Y - peers[j].Pos.Y
			if dx*dx+dy*dy <= r2 {
				union(i, j)
			}
		}
	}
	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		root := find(i)
		groups[root] = append(groups[root], i)
	}
	// Deterministic order: by smallest member index.
	var roots []int
	for root := range groups {
		roots = append(roots, groups[root][0])
	}
	for i := 1; i < len(roots); i++ {
		for j := i; j > 0 && roots[j] < roots[j-1]; j-- {
			roots[j], roots[j-1] = roots[j-1], roots[j]
		}
	}
	out := make([][]int, 0, len(groups))
	for _, first := range roots {
		out = append(out, groups[find(first)])
	}
	return out, nil
}

// ElectionPolicy picks the representative within a cluster.
type ElectionPolicy string

// Election policies.
const (
	// ElectFirst picks the lowest-index member (deterministic baseline).
	ElectFirst ElectionPolicy = "first"
	// ElectBattery picks the member with the most battery, spreading the
	// sensing burden across encounters.
	ElectBattery ElectionPolicy = "battery"
)

// Elect returns the representative index (into peers) for each cluster.
func Elect(peers []Peer, clusters [][]int, policy ElectionPolicy) ([]int, error) {
	reps := make([]int, len(clusters))
	for c, members := range clusters {
		if len(members) == 0 {
			return nil, errors.New("opportunistic: empty cluster")
		}
		switch policy {
		case ElectBattery:
			best := members[0]
			for _, m := range members[1:] {
				if peers[m].Battery > peers[best].Battery {
					best = m
				}
			}
			reps[c] = best
		case ElectFirst, "":
			reps[c] = members[0]
		default:
			return nil, errors.New("opportunistic: unknown election policy " + string(policy))
		}
	}
	return reps, nil
}

// RoundStats summarizes one protocol round.
type RoundStats struct {
	Peers      int
	Clusters   int
	Reports    int     // uploads actually sent (= clusters)
	Suppressed int     // redundant reports avoided
	Redundancy float64 // suppressed / peers
}

// Round runs one opportunistic-collaboration round: cluster, elect,
// suppress. It returns the statistics and the representative indices.
func Round(peers []Peer, radius float64, policy ElectionPolicy) (RoundStats, []int, error) {
	clusters, err := Clusters(peers, radius)
	if err != nil {
		return RoundStats{}, nil, err
	}
	reps, err := Elect(peers, clusters, policy)
	if err != nil {
		return RoundStats{}, nil, err
	}
	st := RoundStats{
		Peers:      len(peers),
		Clusters:   len(clusters),
		Reports:    len(reps),
		Suppressed: len(peers) - len(reps),
	}
	if st.Peers > 0 {
		st.Redundancy = float64(st.Suppressed) / float64(st.Peers)
	}
	return st, reps, nil
}

// CoverageLoss estimates the spatial price of suppression: the mean
// distance (meters) from a suppressed peer to its cluster representative —
// how far the reported sample can be from the suppressed peer's location.
func CoverageLoss(peers []Peer, clusters [][]int, reps []int) float64 {
	if len(clusters) != len(reps) {
		return math.NaN()
	}
	total, n := 0.0, 0
	for c, members := range clusters {
		rp := peers[reps[c]].Pos
		for _, m := range members {
			if m == reps[c] {
				continue
			}
			dx := peers[m].Pos.X - rp.X
			dy := peers[m].Pos.Y - rp.Y
			total += math.Hypot(dx, dy)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}
