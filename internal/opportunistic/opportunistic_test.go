package opportunistic

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mobility"
)

func peersAt(positions [][2]float64) []Peer {
	out := make([]Peer, len(positions))
	for i, p := range positions {
		out[i] = Peer{
			ID:      fmt.Sprintf("p%d", i),
			Pos:     mobility.Point{X: p[0], Y: p[1]},
			Battery: 1,
		}
	}
	return out
}

func TestClustersConnectedComponents(t *testing.T) {
	// Two tight groups far apart plus one loner.
	peers := peersAt([][2]float64{
		{0, 0}, {3, 0}, {6, 0}, // chain: 0-1-2 connected via 5 m hops
		{100, 100}, {102, 100}, // pair
		{500, 500}, // loner
	})
	clusters, err := Clusters(peers, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("clusters %v", clusters)
	}
	if len(clusters[0]) != 3 || len(clusters[1]) != 2 || len(clusters[2]) != 1 {
		t.Fatalf("cluster sizes %v", clusters)
	}
	// Transitivity: 0 and 2 are 6 m apart (> radius) but linked through 1.
	if clusters[0][0] != 0 || clusters[0][2] != 2 {
		t.Fatalf("chain cluster %v", clusters[0])
	}
}

func TestClustersValidation(t *testing.T) {
	if _, err := Clusters(nil, 0); err == nil {
		t.Fatal("want radius error")
	}
	clusters, err := Clusters(nil, 5)
	if err != nil || len(clusters) != 0 {
		t.Fatalf("empty input: %v %v", clusters, err)
	}
}

func TestElectPolicies(t *testing.T) {
	peers := peersAt([][2]float64{{0, 0}, {1, 0}, {2, 0}})
	peers[0].Battery = 0.2
	peers[1].Battery = 0.9
	peers[2].Battery = 0.5
	clusters := [][]int{{0, 1, 2}}
	first, err := Elect(peers, clusters, ElectFirst)
	if err != nil || first[0] != 0 {
		t.Fatalf("ElectFirst got %v err %v", first, err)
	}
	bat, err := Elect(peers, clusters, ElectBattery)
	if err != nil || bat[0] != 1 {
		t.Fatalf("ElectBattery got %v err %v", bat, err)
	}
	if _, err := Elect(peers, clusters, ElectionPolicy("dice")); err == nil {
		t.Fatal("want policy error")
	}
	if _, err := Elect(peers, [][]int{{}}, ElectFirst); err == nil {
		t.Fatal("want empty-cluster error")
	}
}

func TestRoundSuppressionStats(t *testing.T) {
	peers := peersAt([][2]float64{
		{0, 0}, {1, 0}, {2, 0},
		{100, 100}, {101, 100},
		{500, 500},
	})
	st, reps, err := Round(peers, 5, ElectFirst)
	if err != nil {
		t.Fatal(err)
	}
	if st.Peers != 6 || st.Clusters != 3 || st.Reports != 3 || st.Suppressed != 3 {
		t.Fatalf("stats %+v", st)
	}
	if math.Abs(st.Redundancy-0.5) > 1e-12 {
		t.Fatalf("redundancy %v", st.Redundancy)
	}
	if len(reps) != 3 {
		t.Fatalf("reps %v", reps)
	}
}

func TestCoverageLoss(t *testing.T) {
	peers := peersAt([][2]float64{{0, 0}, {4, 0}})
	clusters := [][]int{{0, 1}}
	reps := []int{0}
	if got := CoverageLoss(peers, clusters, reps); math.Abs(got-4) > 1e-12 {
		t.Fatalf("loss %v, want 4", got)
	}
	// Loner-only: no suppressed peers → zero loss.
	if got := CoverageLoss(peers[:1], [][]int{{0}}, []int{0}); got != 0 {
		t.Fatalf("loner loss %v", got)
	}
	if got := CoverageLoss(peers, clusters, nil); !math.IsNaN(got) {
		t.Fatal("mismatched inputs should be NaN")
	}
}

func TestDensityDrivesSuppression(t *testing.T) {
	// Denser crowds suppress a larger fraction — the protocol's whole
	// point. Simulate sparse vs dense pedestrian fields.
	run := func(n int, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		peers := make([]Peer, n)
		for i := range peers {
			peers[i] = Peer{
				ID:  fmt.Sprintf("p%d", i),
				Pos: mobility.Point{X: rng.Float64() * 200, Y: rng.Float64() * 200},
			}
		}
		st, _, err := Round(peers, 15, ElectFirst)
		if err != nil {
			t.Fatal(err)
		}
		return st.Redundancy
	}
	sparse := run(10, 1)
	dense := run(200, 1)
	if dense <= sparse {
		t.Fatalf("dense redundancy %v not above sparse %v", dense, sparse)
	}
	if dense < 0.5 {
		t.Fatalf("dense crowd redundancy only %v", dense)
	}
}

// Property: every peer appears in exactly one cluster, and the number of
// reports equals the number of clusters regardless of policy.
func TestPropPartitionInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		peers := make([]Peer, n)
		for i := range peers {
			peers[i] = Peer{
				ID:      fmt.Sprintf("p%d", i),
				Pos:     mobility.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				Battery: rng.Float64(),
			}
		}
		clusters, err := Clusters(peers, 5+rng.Float64()*20)
		if err != nil {
			return false
		}
		seen := map[int]int{}
		for _, members := range clusters {
			for _, m := range members {
				seen[m]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		reps, err := Elect(peers, clusters, ElectBattery)
		if err != nil || len(reps) != len(clusters) {
			return false
		}
		// Each representative belongs to its own cluster.
		for c, r := range reps {
			found := false
			for _, m := range clusters[c] {
				if m == r {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRound200(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	peers := make([]Peer, 200)
	for i := range peers {
		peers[i] = Peer{
			ID:  fmt.Sprintf("p%d", i),
			Pos: mobility.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300},
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Round(peers, 15, ElectFirst); err != nil {
			b.Fatal(err)
		}
	}
}
