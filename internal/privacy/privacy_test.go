package privacy

import (
	"bytes"
	"testing"

	"repro/internal/sensor"
)

func TestDenyByDefault(t *testing.T) {
	p := NewPolicy()
	if p.Allows(sensor.GPS) {
		t.Fatal("zero policy must deny")
	}
	if _, ok := p.Filter(sensor.GPS, []float64{1}); ok {
		t.Fatal("filter should deny")
	}
}

func TestAllowAndOptOut(t *testing.T) {
	p := AllowAll(sensor.Temperature, sensor.Accelerometer)
	if !p.Allows(sensor.Temperature) || p.Allows(sensor.GPS) {
		t.Fatal("AllowAll scope wrong")
	}
	p.SetOptOut(true)
	if p.Allows(sensor.Temperature) {
		t.Fatal("opt-out must override per-sensor allows")
	}
	if !p.OptedOut() {
		t.Fatal("OptedOut not reported")
	}
	p.SetOptOut(false)
	if !p.Allows(sensor.Temperature) {
		t.Fatal("opt-out should be reversible")
	}
}

func TestQuantization(t *testing.T) {
	p := AllowAll(sensor.GPS)
	p.SetQuantize(sensor.GPS, 0.5)
	vals, ok := p.Filter(sensor.GPS, []float64{1.26, -0.24})
	if !ok {
		t.Fatal("share denied")
	}
	if vals[0] != 1.5 || vals[1] != 0 {
		t.Fatalf("quantized %v", vals)
	}
	// Input must not be mutated.
	in := []float64{1.26}
	p.Filter(sensor.GPS, in)
	if in[0] != 1.26 {
		t.Fatal("input mutated")
	}
	// Disable quantization.
	p.SetQuantize(sensor.GPS, 0)
	vals, _ = p.Filter(sensor.GPS, []float64{1.26})
	if vals[0] != 1.26 {
		t.Fatal("quantization not removed")
	}
}

func TestCrypterRoundTrip(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	c, err := NewCrypter(key)
	if err != nil {
		t.Fatal(err)
	}
	plain := []byte("temperature=21.5 zone=3")
	blob, err := c.Seal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, plain) {
		t.Fatal("ciphertext leaks plaintext")
	}
	got, err := c.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatalf("round trip got %q", got)
	}
	// Nonces are random: two seals differ.
	blob2, _ := c.Seal(plain)
	if bytes.Equal(blob, blob2) {
		t.Fatal("nonce reuse")
	}
}

func TestCrypterTamperDetection(t *testing.T) {
	c, _ := NewCrypter(make([]byte, 16))
	blob, _ := c.Seal([]byte("data"))
	blob[len(blob)-1] ^= 0xff
	if _, err := c.Open(blob); err == nil {
		t.Fatal("tampering not detected")
	}
	if _, err := c.Open([]byte("short")); err == nil {
		t.Fatal("short ciphertext not rejected")
	}
}

func TestCrypterBadKey(t *testing.T) {
	if _, err := NewCrypter(make([]byte, 10)); err == nil {
		t.Fatal("bad key size accepted")
	}
}

func TestWrongKeyFails(t *testing.T) {
	c1, _ := NewCrypter(make([]byte, 16))
	k2 := make([]byte, 16)
	k2[0] = 1
	c2, _ := NewCrypter(k2)
	blob, _ := c1.Seal([]byte("secret"))
	if _, err := c2.Open(blob); err == nil {
		t.Fatal("wrong key decrypted")
	}
}
