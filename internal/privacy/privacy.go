// Package privacy implements the privacy regulation layer the paper
// commits to: "transparency, full user control, and encryption of the data
// that is shared. User can fully set or control their preferences, enable
// or disable features, control the type of sensors and parameter that can
// be shared … In the worst case, the user can opt-out."
//
// A Policy gates and degrades (quantizes) per-sensor sharing; a Crypter
// provides authenticated encryption (AES-GCM) for payloads leaving the
// device.
package privacy

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/sensor"
)

// Policy is one user's sharing preferences. The zero value shares nothing
// (privacy by default); use AllowAll for a permissive start.
type Policy struct {
	mu       sync.RWMutex
	optOut   bool
	share    map[sensor.Kind]bool
	quantize map[sensor.Kind]float64 // round shared values to this step
}

// NewPolicy returns a deny-by-default policy.
func NewPolicy() *Policy {
	return &Policy{
		share:    make(map[sensor.Kind]bool),
		quantize: make(map[sensor.Kind]float64),
	}
}

// AllowAll returns a policy sharing every listed kind.
func AllowAll(kinds ...sensor.Kind) *Policy {
	p := NewPolicy()
	for _, k := range kinds {
		p.SetShare(k, true)
	}
	return p
}

// SetOptOut flips the global opt-out: when set, nothing is shared
// regardless of per-sensor settings.
func (p *Policy) SetOptOut(v bool) {
	p.mu.Lock()
	p.optOut = v
	p.mu.Unlock()
}

// OptedOut reports the global opt-out state.
func (p *Policy) OptedOut() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.optOut
}

// SetShare enables or disables sharing of one sensor kind.
func (p *Policy) SetShare(kind sensor.Kind, allow bool) {
	p.mu.Lock()
	p.share[kind] = allow
	p.mu.Unlock()
}

// SetQuantize degrades shared values of a kind to multiples of step
// (0 disables quantization). Coarse location/temperature sharing is the
// classic privacy/utility dial.
func (p *Policy) SetQuantize(kind sensor.Kind, step float64) {
	p.mu.Lock()
	if step <= 0 {
		delete(p.quantize, kind)
	} else {
		p.quantize[kind] = step
	}
	p.mu.Unlock()
}

// Allows reports whether values of the kind may leave the device.
func (p *Policy) Allows(kind sensor.Kind) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return !p.optOut && p.share[kind]
}

// Filter applies the policy to an outgoing reading: it returns the
// (possibly quantized) values and true, or nil and false when sharing is
// denied. The input slice is not modified.
func (p *Policy) Filter(kind sensor.Kind, values []float64) ([]float64, bool) {
	if !p.Allows(kind) {
		return nil, false
	}
	p.mu.RLock()
	step := p.quantize[kind]
	p.mu.RUnlock()
	out := make([]float64, len(values))
	copy(out, values)
	if step > 0 {
		for i, v := range out {
			out[i] = math.Round(v/step) * step
		}
	}
	return out, true
}

// --- Encryption ----------------------------------------------------------------

// Crypter provides AES-GCM authenticated encryption for shared payloads.
type Crypter struct {
	aead cipher.AEAD
}

// NewCrypter builds a crypter from a 16-, 24- or 32-byte key.
func NewCrypter(key []byte) (*Crypter, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("privacy: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("privacy: %w", err)
	}
	return &Crypter{aead: aead}, nil
}

// Seal encrypts plain with a random nonce (prepended to the ciphertext).
func (c *Crypter) Seal(plain []byte) ([]byte, error) {
	nonce := make([]byte, c.aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("privacy: nonce: %w", err)
	}
	return c.aead.Seal(nonce, nonce, plain, nil), nil
}

// Open decrypts a Seal output, authenticating it.
func (c *Crypter) Open(blob []byte) ([]byte, error) {
	ns := c.aead.NonceSize()
	if len(blob) < ns {
		return nil, errors.New("privacy: ciphertext too short")
	}
	plain, err := c.aead.Open(nil, blob[:ns], blob[ns:], nil)
	if err != nil {
		return nil, fmt.Errorf("privacy: decrypt: %w", err)
	}
	return plain, nil
}
