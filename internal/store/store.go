// Package store is SenseDroid's data logging and retrieval layer (the
// paper lists "data management routines and interface to a light weight
// database such as SQLite"). It is an in-memory, append-mostly time-series
// store keyed by series name (typically "<node>/<sensor>"), with
// time-range queries, bounded retention, aggregate queries, and
// JSON snapshot/restore in place of a database file.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Store observability handles (no-ops until obs.Enable).
var (
	obsAppends   = obs.GetCounter("store.append.records")
	obsEvictions = obs.GetCounter("store.evicted.records")
	obsQueries   = obs.GetCounter("store.query.count")
)

// Record is one logged observation. T is simulation time in seconds.
type Record struct {
	T      float64   `json:"t"`
	Values []float64 `json:"values"`
}

// Store is a concurrency-safe multi-series log.
type Store struct {
	mu        sync.RWMutex
	series    map[string][]Record // guarded by mu
	maxPerKey int                 // immutable after New; 0 = unbounded
}

// ErrNoSeries reports a query on an unknown series.
var ErrNoSeries = errors.New("store: no such series")

// New creates a store retaining at most maxPerKey records per series
// (0 = unbounded). Older records are evicted first.
func New(maxPerKey int) *Store {
	return &Store{series: make(map[string][]Record), maxPerKey: maxPerKey}
}

// Append logs a record. Records are expected in non-decreasing time order
// per series; out-of-order appends are inserted to keep the series sorted.
func (s *Store) Append(series string, r Record) error {
	if series == "" {
		return errors.New("store: empty series name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.series[series]
	if n := len(recs); n > 0 && r.T < recs[n-1].T {
		// Insert in order (rare path).
		i := sort.Search(n, func(i int) bool { return recs[i].T > r.T })
		recs = append(recs, Record{})
		copy(recs[i+1:], recs[i:])
		recs[i] = r
	} else {
		recs = append(recs, r)
	}
	if s.maxPerKey > 0 && len(recs) > s.maxPerKey {
		drop := len(recs) - s.maxPerKey
		recs = append(recs[:0:0], recs[drop:]...)
		obsEvictions.Add(int64(drop))
	}
	s.series[series] = recs
	obsAppends.Inc()
	return nil
}

// AppendScalar logs a single-value record.
func (s *Store) AppendScalar(series string, t, v float64) error {
	return s.Append(series, Record{T: t, Values: []float64{v}})
}

// Query returns records of a series with T in [from, to], in time order.
func (s *Store) Query(series string, from, to float64) ([]Record, error) {
	obsQueries.Inc()
	s.mu.RLock()
	defer s.mu.RUnlock()
	recs, ok := s.series[series]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSeries, series)
	}
	lo := sort.Search(len(recs), func(i int) bool { return recs[i].T >= from })
	hi := sort.Search(len(recs), func(i int) bool { return recs[i].T > to })
	out := make([]Record, hi-lo)
	copy(out, recs[lo:hi])
	return out, nil
}

// Latest returns the most recent record of a series.
func (s *Store) Latest(series string) (Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	recs, ok := s.series[series]
	if !ok || len(recs) == 0 {
		return Record{}, fmt.Errorf("%w: %q", ErrNoSeries, series)
	}
	return recs[len(recs)-1], nil
}

// Series returns all series names, sorted.
func (s *Store) Series() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.series))
	for k := range s.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the record count of a series (0 if absent).
func (s *Store) Len(series string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.series[series])
}

// Stats summarizes the first value-column of a series over a time range.
type Stats struct {
	Count    int
	Min, Max float64
	Mean     float64
}

// Aggregate computes Stats over [from, to] of a series' first value.
func (s *Store) Aggregate(series string, from, to float64) (Stats, error) {
	recs, err := s.Query(series, from, to)
	if err != nil {
		return Stats{}, err
	}
	st := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, r := range recs {
		if len(r.Values) == 0 {
			continue
		}
		v := r.Values[0]
		st.Count++
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	if st.Count > 0 {
		st.Mean = sum / float64(st.Count)
	} else {
		st.Min, st.Max = 0, 0
	}
	return st, nil
}

// WindowStats is one fixed-width aggregation window.
type WindowStats struct {
	From, To float64
	Stats
}

// WindowAggregate splits [from, to) into fixed-width windows and computes
// Stats for each — the downsampling query a dashboard uses instead of
// pulling raw records. Windows are [From, To) half-open; empty windows
// are included with Count 0.
func (s *Store) WindowAggregate(series string, from, to, width float64) ([]WindowStats, error) {
	if width <= 0 {
		return nil, errors.New("store: window width must be positive")
	}
	if to <= from {
		return nil, errors.New("store: empty time range")
	}
	recs, err := s.Query(series, from, to)
	if err != nil {
		return nil, err
	}
	nWin := int(math.Ceil((to - from) / width))
	out := make([]WindowStats, nWin)
	for i := range out {
		out[i] = WindowStats{
			From:  from + float64(i)*width,
			To:    from + float64(i+1)*width,
			Stats: Stats{Min: math.Inf(1), Max: math.Inf(-1)},
		}
	}
	sums := make([]float64, nWin)
	for _, r := range recs {
		if len(r.Values) == 0 {
			continue
		}
		i := int((r.T - from) / width)
		if i < 0 || i >= nWin {
			continue // r.T == to lands past the last half-open window
		}
		v := r.Values[0]
		w := &out[i]
		w.Count++
		sums[i] += v
		if v < w.Min {
			w.Min = v
		}
		if v > w.Max {
			w.Max = v
		}
	}
	for i := range out {
		if out[i].Count > 0 {
			out[i].Mean = sums[i] / float64(out[i].Count)
		} else {
			out[i].Min, out[i].Max = 0, 0
		}
	}
	return out, nil
}

// Delete removes a series entirely.
func (s *Store) Delete(series string) {
	s.mu.Lock()
	delete(s.series, series)
	s.mu.Unlock()
}

// Snapshot writes the full store as JSON (the "database file").
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return json.NewEncoder(w).Encode(s.series)
}

// Restore replaces the store contents from a Snapshot stream.
func (s *Store) Restore(r io.Reader) error {
	var data map[string][]Record
	if err := json.NewDecoder(r).Decode(&data); err != nil {
		return fmt.Errorf("store: restore: %w", err)
	}
	for name, recs := range data {
		sort.Slice(recs, func(i, j int) bool { return recs[i].T < recs[j].T })
		data[name] = recs
	}
	s.mu.Lock()
	s.series = data
	s.mu.Unlock()
	return nil
}
