package store

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAppendQuery(t *testing.T) {
	s := New(0)
	for i := 0; i < 10; i++ {
		if err := s.AppendScalar("n1/temp", float64(i), 20+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := s.Query("n1/temp", 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[0].T != 3 || recs[3].T != 6 {
		t.Fatalf("range query got %v", recs)
	}
	if _, err := s.Query("missing", 0, 1); err == nil {
		t.Fatal("want no-series error")
	}
	if err := s.Append("", Record{}); err == nil {
		t.Fatal("want empty-name error")
	}
}

func TestOutOfOrderAppendKeepsSorted(t *testing.T) {
	s := New(0)
	s.AppendScalar("x", 5, 50)
	s.AppendScalar("x", 1, 10)
	s.AppendScalar("x", 3, 30)
	recs, _ := s.Query("x", 0, 10)
	for i := 1; i < len(recs); i++ {
		if recs[i].T < recs[i-1].T {
			t.Fatalf("unsorted: %v", recs)
		}
	}
	if recs[0].Values[0] != 10 || recs[2].Values[0] != 50 {
		t.Fatalf("values misplaced: %v", recs)
	}
}

func TestRetention(t *testing.T) {
	s := New(5)
	for i := 0; i < 12; i++ {
		s.AppendScalar("x", float64(i), float64(i))
	}
	if s.Len("x") != 5 {
		t.Fatalf("retained %d, want 5", s.Len("x"))
	}
	recs, _ := s.Query("x", 0, 100)
	if recs[0].T != 7 {
		t.Fatalf("oldest retained %v, want 7", recs[0].T)
	}
}

func TestLatest(t *testing.T) {
	s := New(0)
	s.AppendScalar("x", 1, 10)
	s.AppendScalar("x", 2, 20)
	r, err := s.Latest("x")
	if err != nil || r.Values[0] != 20 {
		t.Fatalf("latest %v err %v", r, err)
	}
	if _, err := s.Latest("missing"); err == nil {
		t.Fatal("want error")
	}
}

func TestSeriesAndDelete(t *testing.T) {
	s := New(0)
	s.AppendScalar("b", 0, 1)
	s.AppendScalar("a", 0, 1)
	if got := s.Series(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("Series=%v", got)
	}
	s.Delete("a")
	if got := s.Series(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("after delete Series=%v", got)
	}
}

func TestAggregate(t *testing.T) {
	s := New(0)
	for i, v := range []float64{10, 20, 30, 40} {
		s.AppendScalar("x", float64(i), v)
	}
	st, err := s.Aggregate("x", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 2 || st.Min != 20 || st.Max != 30 || st.Mean != 25 {
		t.Fatalf("stats %+v", st)
	}
	empty, _ := s.Aggregate("x", 100, 200)
	if empty.Count != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Fatalf("empty stats %+v", empty)
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New(0)
	s.AppendScalar("x", 1, 10)
	s.Append("y", Record{T: 2, Values: []float64{1, 2, 3}})
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := New(0)
	if err := s2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := s2.Latest("y")
	if err != nil || len(r.Values) != 3 {
		t.Fatalf("restored %v err %v", r, err)
	}
	if err := s2.Restore(strings.NewReader("{broken")); err == nil {
		t.Fatal("want decode error")
	}
}

// Property: Query(from,to) returns exactly the records with from<=T<=to,
// in sorted order, regardless of append order.
func TestPropQueryWindow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(0)
		n := 1 + rng.Intn(40)
		times := make([]float64, n)
		for i := range times {
			times[i] = float64(rng.Intn(20))
			s.AppendScalar("x", times[i], times[i])
		}
		from := float64(rng.Intn(20))
		to := from + float64(rng.Intn(10))
		recs, err := s.Query("x", from, to)
		if err != nil {
			return false
		}
		want := 0
		for _, tm := range times {
			if tm >= from && tm <= to {
				want++
			}
		}
		if len(recs) != want {
			return false
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].T < recs[i-1].T {
				return false
			}
		}
		for _, r := range recs {
			if r.T < from || r.T > to {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	s := New(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AppendScalar("x", float64(i), 1.0)
	}
}

func TestWindowAggregate(t *testing.T) {
	s := New(0)
	for i := 0; i < 10; i++ {
		s.AppendScalar("x", float64(i), float64(i*10))
	}
	wins, err := s.WindowAggregate("x", 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 2 {
		t.Fatalf("windows %d", len(wins))
	}
	if wins[0].Count != 5 || wins[0].Mean != 20 || wins[0].Min != 0 || wins[0].Max != 40 {
		t.Fatalf("window0 %+v", wins[0])
	}
	if wins[1].Count != 5 || wins[1].Mean != 70 {
		t.Fatalf("window1 %+v", wins[1])
	}
	if wins[0].From != 0 || wins[0].To != 5 || wins[1].From != 5 {
		t.Fatalf("window bounds %+v %+v", wins[0], wins[1])
	}
}

func TestWindowAggregateEmptyWindows(t *testing.T) {
	s := New(0)
	s.AppendScalar("x", 1, 10)
	s.AppendScalar("x", 21, 30)
	wins, err := s.WindowAggregate("x", 0, 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 3 {
		t.Fatalf("windows %d", len(wins))
	}
	if wins[1].Count != 0 || wins[1].Min != 0 || wins[1].Max != 0 {
		t.Fatalf("empty window %+v", wins[1])
	}
	if wins[2].Count != 1 || wins[2].Mean != 30 {
		t.Fatalf("window2 %+v", wins[2])
	}
}

func TestWindowAggregateValidation(t *testing.T) {
	s := New(0)
	s.AppendScalar("x", 0, 1)
	if _, err := s.WindowAggregate("x", 0, 10, 0); err == nil {
		t.Fatal("want width error")
	}
	if _, err := s.WindowAggregate("x", 10, 5, 1); err == nil {
		t.Fatal("want range error")
	}
	if _, err := s.WindowAggregate("missing", 0, 10, 1); err == nil {
		t.Fatal("want series error")
	}
}
