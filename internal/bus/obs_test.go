package bus

import (
	"fmt"
	"testing"

	"repro/internal/obs"
)

// TestSlowSubscriberOverflowCounted is the regression test for subscriber
// buffer overflow accounting: a subscriber that never drains must not block
// the publisher, and every discarded message must show up both in the
// subscription's Dropped() count and in the global bus.deliver.dropped
// counter (plus the one-time warning logged by noteDrop).
func TestSlowSubscriberOverflowCounted(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	dropCtr := obs.GetCounter("bus.deliver.dropped")
	before := dropCtr.Value()

	b := New()
	defer b.Close()
	sub, err := b.Subscribe("slow/#", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	const published = 10
	for i := 0; i < published; i++ {
		if err := b.Publish("slow/t", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	wantDropped := int64(published - 2) // buffer held the first two
	if got := sub.Dropped(); got != wantDropped {
		t.Fatalf("Subscription.Dropped() = %d, want %d", got, wantDropped)
	}
	if got := dropCtr.Value() - before; got != wantDropped {
		t.Fatalf("bus.deliver.dropped advanced by %d, want %d", got, wantDropped)
	}
}

func TestPublishMetrics(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	pub := obs.GetCounter("bus.publish.messages")
	bytes := obs.GetCounter("bus.publish.bytes")
	del := obs.GetCounter("bus.deliver.messages")
	pub0, bytes0, del0 := pub.Value(), bytes.Value(), del.Value()

	b := New()
	defer b.Close()
	sub, err := b.Subscribe("m/#", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	for i := 0; i < 4; i++ {
		if err := b.Publish("m/t", make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if got := pub.Value() - pub0; got != 4 {
		t.Fatalf("publish.messages += %d, want 4", got)
	}
	if got := bytes.Value() - bytes0; got != 32 {
		t.Fatalf("publish.bytes += %d, want 32", got)
	}
	if got := del.Value() - del0; got != 4 {
		t.Fatalf("deliver.messages += %d, want 4", got)
	}
}

func TestObsHookPerPrefixBreakdown(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	b := New()
	defer b.Close()
	b.AddHook(ObsHook())
	msgs := obs.GetCounter("bus.topic.nc7.messages")
	byts := obs.GetCounter("bus.topic.nc7.bytes")
	m0, b0 := msgs.Value(), byts.Value()
	for i := 0; i < 3; i++ {
		if err := b.Publish(fmt.Sprintf("nc7/node/n%d/measure", i), make([]byte, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Publish("other/topic", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := msgs.Value() - m0; got != 3 {
		t.Fatalf("bus.topic.nc7.messages += %d, want 3", got)
	}
	if got := byts.Value() - b0; got != 15 {
		t.Fatalf("bus.topic.nc7.bytes += %d, want 15", got)
	}
}

func TestObsHookDisabledDoesNotRecord(t *testing.T) {
	b := New()
	defer b.Close()
	b.AddHook(ObsHook())
	ctr := obs.GetCounter("bus.topic.quiet.messages")
	before := ctr.Value()
	if err := b.Publish("quiet/t", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := ctr.Value(); got != before {
		t.Fatalf("disabled ObsHook recorded (%d -> %d)", before, got)
	}
}
