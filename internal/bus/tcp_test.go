package bus

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/testutil"
)

// Failure-path coverage for the TCP transport and the request/reply
// helper: dial failures, request timeouts, oversized payloads, and a
// server closing mid-request. Every test that starts transport goroutines
// runs under the testutil.CheckGoroutines leak guard.

func TestDialFailureClosedPort(t *testing.T) {
	// Grab a port that is guaranteed closed: listen, note the address,
	// close the listener, then dial it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr); err == nil {
		t.Fatal("Dial to closed port succeeded")
	}
}

func TestTCPOversizedPayloadKillsConnection(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := New()
	defer b.Close()
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ch, err := cli.Subscribe("big/#")
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: a normal payload round-trips.
	if err := cli.Publish("big/ok", []byte("fine")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-ch:
		if string(msg.Payload) != "fine" {
			t.Fatalf("payload %q", msg.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("normal payload not delivered")
	}
	// A frame past the server's 4 MiB scanner limit makes the server drop
	// the connection (the documented failure mode for oversized payloads);
	// the client's subscription channels close when the read loop ends.
	if err := cli.Publish("big/huge", make([]byte, 5<<20)); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("oversized payload was delivered")
		}
		// Channel closed: connection torn down as expected.
	case <-time.After(5 * time.Second):
		t.Fatal("connection not torn down after oversized payload")
	}
}

func TestTCPServerCloseClosesClientSubscriptions(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := New()
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ch, err := cli.Subscribe("x/#")
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	b.Close()
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("unexpected message after server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription channel not closed after server close")
	}
	// After the read loop has ended the client refuses further use.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cli.Subscribe("y/#"); err != nil {
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("Subscribe error = %v, want ErrClosed", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Subscribe still succeeding after connection loss")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cli.Publish("y/t", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Publish after close = %v, want ErrClosed", err)
	}
}

func TestRequestBusClosedMidRequest(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := New()
	// A responder that never answers, so Request parks on its reply
	// channel until Close tears the bus down under it.
	sub, err := b.Subscribe("svc/slow", 4)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		<-sub.C   // swallow the request
		b.Close() // server goes away mid-request
	}()
	err = Request(b, "svc/slow", struct{}{}, nil, 10*time.Second)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Request during close = %v, want ErrClosed", err)
	}
}

func TestRequestTimeoutNoResponder(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := New()
	defer b.Close()
	start := time.Now()
	err := Request(b, "svc/absent", struct{}{}, nil, 50*time.Millisecond)
	if err == nil {
		t.Fatal("Request with no responder succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not fire promptly")
	}
}

func TestRequestUnmarshalableBody(t *testing.T) {
	b := New()
	defer b.Close()
	if err := Request(b, "svc/enc", make(chan int), nil, time.Second); err == nil {
		t.Fatal("Request with unmarshalable body succeeded")
	}
}

func TestRespondIgnoresMalformedEnvelopes(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := New()
	defer b.Close()
	served := make(chan string, 1)
	go func() {
		_ = Respond(b, "svc/echo", func(topic string, body []byte) (any, error) {
			served <- string(body)
			return map[string]string{"ok": "yes"}, nil
		})
	}()
	// Give Respond a moment to subscribe.
	time.Sleep(20 * time.Millisecond)
	// Garbage that is not an envelope must be skipped without killing the
	// responder loop...
	if err := b.Publish("svc/echo", []byte("not json at all")); err != nil {
		t.Fatal(err)
	}
	// ...so a well-formed request afterwards still gets served.
	var out map[string]string
	if err := Request(b, "svc/echo", "hello", &out, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if out["ok"] != "yes" {
		t.Fatalf("reply = %v", out)
	}
	select {
	case body := <-served:
		if body != `"hello"` {
			t.Fatalf("served body = %q", body)
		}
	default:
		t.Fatal("handler never ran")
	}
}

func TestTCPPublishInvalidAfterDial(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := New()
	defer b.Close()
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Publish("bad//topic", []byte("x")); err == nil {
		t.Fatal("invalid topic accepted")
	}
	if _, err := cli.Subscribe("bad//+/pattern"); err == nil {
		t.Fatal("invalid pattern accepted")
	}
}

// --- Leak regressions -------------------------------------------------------
//
// Each of these pins a goroutine leak that once existed: the test fails
// under testutil.CheckGoroutines if the fix regresses.

// TestServerCloseJoinsForwarders pins that Server.Close waits for the
// per-subscription forwarder goroutines. Before the forwarders joined the
// server's WaitGroup, Close could return while they still wrote to
// half-dead connections.
func TestServerCloseJoinsForwarders(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := New()
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var clients []*Client
	for i := 0; i < 4; i++ {
		cli, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cli)
		ch, err := cli.Subscribe(fmt.Sprintf("leak/%d/#", i))
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip once so the server has registered the sub (and its
		// forwarder goroutine) before we tear everything down.
		if err := cli.Publish(fmt.Sprintf("leak/%d/ping", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatal("subscription never became live")
		}
	}
	srv.Close()
	b.Close()
	for _, cli := range clients {
		if err := cli.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			t.Errorf("client close: %v", err)
		}
	}
}

// TestClientCloseJoinsReadLoop pins that Client.Close does not return
// until the readLoop goroutine has exited — including the second Close
// after the server already dropped the connection.
func TestClientCloseJoinsReadLoop(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := New()
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	b.Close()
	// Close after the remote end is gone, twice: both calls must return
	// (closeOnce) and the read loop must be joined by the first.
	if err := cli.Close(); err != nil {
		t.Logf("first close: %v", err) // socket may already be dead; only the join matters
	}
	if err := cli.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	select {
	case <-cli.readDone:
	default:
		t.Fatal("Close returned before readLoop exited")
	}
}

// TestRequestCancelReleasesResources pins that an abandoned request
// leaves nothing behind: the old implementation parked a time.After
// timer (and with it the reply subscription) for the full timeout even
// after the caller gave up.
func TestRequestCancelReleasesResources(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := New()
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- RequestContext(ctx, b, "svc/never", struct{}{}, nil)
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RequestContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request did not return")
	}
}

// TestRespondContextStops pins the responder shutdown path that Respond
// never had: cancelling the context stops the loop even while the bus
// stays open.
func TestRespondContextStops(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := New()
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- RespondContext(ctx, b, "svc/stoppable", func(topic string, body []byte) (any, error) {
			return "ok", nil
		})
	}()
	// Serve one request to prove the responder is live. The responder
	// subscribes asynchronously, so retry short requests until one lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var out string
		if err := Request(b, "svc/stoppable", "hi", &out, 100*time.Millisecond); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("responder never served a request")
		}
	}
	// ...then stop it without touching the bus.
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RespondContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled responder did not stop")
	}
}
