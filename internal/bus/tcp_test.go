package bus

import (
	"errors"
	"net"
	"testing"
	"time"
)

// Failure-path coverage for the TCP transport and the request/reply
// helper: dial failures, request timeouts, oversized payloads, and a
// server closing mid-request.

func TestDialFailureClosedPort(t *testing.T) {
	// Grab a port that is guaranteed closed: listen, note the address,
	// close the listener, then dial it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr); err == nil {
		t.Fatal("Dial to closed port succeeded")
	}
}

func TestTCPOversizedPayloadKillsConnection(t *testing.T) {
	b := New()
	defer b.Close()
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ch, err := cli.Subscribe("big/#")
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: a normal payload round-trips.
	if err := cli.Publish("big/ok", []byte("fine")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-ch:
		if string(msg.Payload) != "fine" {
			t.Fatalf("payload %q", msg.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("normal payload not delivered")
	}
	// A frame past the server's 4 MiB scanner limit makes the server drop
	// the connection (the documented failure mode for oversized payloads);
	// the client's subscription channels close when the read loop ends.
	if err := cli.Publish("big/huge", make([]byte, 5<<20)); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("oversized payload was delivered")
		}
		// Channel closed: connection torn down as expected.
	case <-time.After(5 * time.Second):
		t.Fatal("connection not torn down after oversized payload")
	}
}

func TestTCPServerCloseClosesClientSubscriptions(t *testing.T) {
	b := New()
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ch, err := cli.Subscribe("x/#")
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	b.Close()
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("unexpected message after server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription channel not closed after server close")
	}
	// After the read loop has ended the client refuses further use.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cli.Subscribe("y/#"); err != nil {
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("Subscribe error = %v, want ErrClosed", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Subscribe still succeeding after connection loss")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cli.Publish("y/t", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Publish after close = %v, want ErrClosed", err)
	}
}

func TestRequestBusClosedMidRequest(t *testing.T) {
	b := New()
	// A responder that never answers, so Request parks on its reply
	// channel until Close tears the bus down under it.
	sub, err := b.Subscribe("svc/slow", 4)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		<-sub.C   // swallow the request
		b.Close() // server goes away mid-request
	}()
	err = Request(b, "svc/slow", struct{}{}, nil, 10*time.Second)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Request during close = %v, want ErrClosed", err)
	}
}

func TestRequestTimeoutNoResponder(t *testing.T) {
	b := New()
	defer b.Close()
	start := time.Now()
	err := Request(b, "svc/absent", struct{}{}, nil, 50*time.Millisecond)
	if err == nil {
		t.Fatal("Request with no responder succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not fire promptly")
	}
}

func TestRequestUnmarshalableBody(t *testing.T) {
	b := New()
	defer b.Close()
	if err := Request(b, "svc/enc", make(chan int), nil, time.Second); err == nil {
		t.Fatal("Request with unmarshalable body succeeded")
	}
}

func TestRespondIgnoresMalformedEnvelopes(t *testing.T) {
	b := New()
	defer b.Close()
	served := make(chan string, 1)
	go func() {
		_ = Respond(b, "svc/echo", func(topic string, body []byte) (any, error) {
			served <- string(body)
			return map[string]string{"ok": "yes"}, nil
		})
	}()
	// Give Respond a moment to subscribe.
	time.Sleep(20 * time.Millisecond)
	// Garbage that is not an envelope must be skipped without killing the
	// responder loop...
	if err := b.Publish("svc/echo", []byte("not json at all")); err != nil {
		t.Fatal(err)
	}
	// ...so a well-formed request afterwards still gets served.
	var out map[string]string
	if err := Request(b, "svc/echo", "hello", &out, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if out["ok"] != "yes" {
		t.Fatalf("reply = %v", out)
	}
	select {
	case body := <-served:
		if body != `"hello"` {
			t.Fatalf("served body = %q", body)
		}
	default:
		t.Fatal("handler never ran")
	}
}

func TestTCPPublishInvalidAfterDial(t *testing.T) {
	b := New()
	defer b.Close()
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Publish("bad//topic", []byte("x")); err == nil {
		t.Fatal("invalid topic accepted")
	}
	if _, err := cli.Subscribe("bad//+/pattern"); err == nil {
		t.Fatal("invalid pattern accepted")
	}
}
