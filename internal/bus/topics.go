// Topic construction helpers. Every topic string that crosses a
// component boundary (broker ↔ node ↔ cloud ↔ serve) is built here, so
// the protocol's segment layout lives in exactly one file. Keeping the
// helpers as plain string concatenation (no fmt.Sprintf) also lets the
// sdlint topicflow analyzer resolve every call site to an exact topic
// shape instead of an abstract wildcard.
//
// Layout (NC = NanoCloud/broker ID):
//
//	<nc>/register              node → broker presence announcements
//	<nc>/node/<id>/measure     broker → node measure-on-demand request
//	<nc>/node/<id>/position    broker → node position query
//	<nc>/node/<id>/status      broker → node status/battery query
//	<nc>/ctx/<id>              retained per-node context snapshots
package bus

// RegisterTopic returns the NanoCloud's node-registration topic, on
// which nodes announce themselves to the broker.
func RegisterTopic(ncID string) string {
	return ncID + "/register"
}

// NodeMeasureTopic returns a node's measure-command request topic.
func NodeMeasureTopic(ncID, nodeID string) string {
	return ncID + "/node/" + nodeID + "/measure"
}

// NodePositionTopic returns a node's position-query request topic.
func NodePositionTopic(ncID, nodeID string) string {
	return ncID + "/node/" + nodeID + "/position"
}

// NodeStatusTopic returns a node's status-query request topic.
func NodeStatusTopic(ncID, nodeID string) string {
	return ncID + "/node/" + nodeID + "/status"
}

// NodeCommandPattern returns the subscription pattern covering every
// command topic addressed to one node (measure, position, status and
// any future command segment), for transports that forward a node's
// whole command namespace at once.
func NodeCommandPattern(ncID, nodeID string) string {
	return ncID + "/node/" + nodeID + "/#"
}

// NodeContextTopic returns the retained topic carrying a node's latest
// context snapshot within a broker's namespace.
func NodeContextTopic(brokerID, nodeID string) string {
	return brokerID + "/ctx/" + nodeID
}
