package bus

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyErr is a transient transport failure for retry-classification
// tests (mirrors netsim's NodeDownError shape without importing it).
type flakyErr struct{}

func (flakyErr) Error() string   { return "flaky transport" }
func (flakyErr) Retryable() bool { return true }

type terminalErr struct{}

func (terminalErr) Error() string   { return "terminal transport" }
func (terminalErr) Retryable() bool { return false }

// startEcho serves request topic "svc", echoing the body back.
func startEcho(t *testing.T, b *Bus) {
	t.Helper()
	go func() {
		//lint:ignore errcheck test responder: Respond returns nil when the bus closes in cleanup
		_ = Respond(b, "svc", func(_ string, body []byte) (any, error) {
			var v int
			if err := decode(body, &v); err != nil {
				return nil, err
			}
			return v, nil
		})
	}()
}

func decode(body []byte, out *int) error {
	_, err := fmt.Sscan(strings.TrimSpace(string(body)), out)
	return err
}

// failFirstN installs an interceptor that fails the first n publishes on
// the exact request topic with err, passing everything else (including
// replies) through. Returns the attempt counter.
func failFirstN(b *Bus, topic string, n int, err error) *atomic.Int64 {
	var seen atomic.Int64
	b.SetInterceptor(func(m Message) (bool, error) {
		if m.Topic != topic {
			return true, nil
		}
		if seen.Add(1) <= int64(n) {
			return false, err
		}
		return true, nil
	})
	return &seen
}

func TestRequestRetryRecoversFromTransientFailures(t *testing.T) {
	b := New()
	defer b.Close()
	startEcho(t, b)
	attempts := failFirstN(b, "svc", 2, flakyErr{})
	var out int
	err := RequestRetryContext(context.Background(), b, "svc", 41, &out,
		RetryPolicy{Attempts: 4, BaseBackoff: time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if out != 41 {
		t.Fatalf("reply %d, want 41", out)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("made %d attempts, want 3 (2 failures + 1 success)", got)
	}
}

func TestRequestRetryTerminalErrorStopsImmediately(t *testing.T) {
	b := New()
	defer b.Close()
	startEcho(t, b)
	attempts := failFirstN(b, "svc", 100, terminalErr{})
	err := RequestRetryContext(context.Background(), b, "svc", 1, nil,
		RetryPolicy{Attempts: 5, BaseBackoff: time.Millisecond, Seed: 2})
	if err == nil {
		t.Fatal("want error")
	}
	var te terminalErr
	if !errors.As(err, &te) {
		t.Fatalf("final error %v does not wrap the terminal cause", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("terminal error burned %d attempts, want 1", got)
	}
}

func TestRequestRetryExhaustsBudget(t *testing.T) {
	b := New()
	defer b.Close()
	startEcho(t, b)
	attempts := failFirstN(b, "svc", 100, flakyErr{})
	err := RequestRetryContext(context.Background(), b, "svc", 1, nil,
		RetryPolicy{Attempts: 3, BaseBackoff: time.Millisecond, Seed: 3})
	if err == nil {
		t.Fatal("want error after budget exhaustion")
	}
	if !strings.Contains(err.Error(), "after 3 attempt(s)") {
		t.Fatalf("error %q does not report the attempt budget", err)
	}
	var fe flakyErr
	if !errors.As(err, &fe) {
		t.Fatalf("final error %v does not wrap the last cause", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("made %d attempts, want exactly 3", got)
	}
}

func TestRequestRetryCancelDuringBackoffUnblocks(t *testing.T) {
	b := New()
	defer b.Close()
	startEcho(t, b)
	failFirstN(b, "svc", 100, flakyErr{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := RequestRetryContext(ctx, b, "svc", 1, nil,
		RetryPolicy{Attempts: 10, BaseBackoff: 10 * time.Second, Seed: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled retry = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel did not unblock the backoff sleep (took %v)", elapsed)
	}
}

func TestRequestRetryAttemptTimeoutIsTransient(t *testing.T) {
	// No responder at all: each attempt hits its per-attempt deadline,
	// which classifies as transient and burns the budget.
	b := New()
	defer b.Close()
	var requests atomic.Int64
	b.SetInterceptor(func(m Message) (bool, error) {
		if m.Topic == "svc" {
			requests.Add(1)
		}
		return true, nil
	})
	err := RequestRetryContext(context.Background(), b, "svc", 1, nil,
		RetryPolicy{Attempts: 2, AttemptTimeout: 20 * time.Millisecond, BaseBackoff: time.Millisecond, Seed: 5})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unanswered retry = %v, want wrapped DeadlineExceeded", err)
	}
	if got := requests.Load(); got != 2 {
		t.Fatalf("made %d attempts, want 2 (per-attempt timeouts are retryable)", got)
	}
}

func TestRequestRetryBacksOff(t *testing.T) {
	// Two failed attempts before success ⇒ two backoff sleeps with floors
	// base/2 and 2·base/2. Pin the floor, not the exact jitter (which is
	// seeded but timing-sensitive to assert precisely).
	b := New()
	defer b.Close()
	startEcho(t, b)
	failFirstN(b, "svc", 2, flakyErr{})
	base := 30 * time.Millisecond
	start := time.Now()
	if err := RequestRetryContext(context.Background(), b, "svc", 7, nil,
		RetryPolicy{Attempts: 4, BaseBackoff: base, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < base/2+base {
		t.Fatalf("elapsed %v below the minimum backoff floor %v", elapsed, base/2+base)
	}
}

func TestIsRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{flakyErr{}, true},
		{terminalErr{}, false},
		{fmt.Errorf("wrapped: %w", flakyErr{}), true},
		{context.Canceled, false},
		{context.DeadlineExceeded, true},
		{ErrClosed, false},
		{errors.New("opaque"), false},
	}
	for _, c := range cases {
		if got := IsRetryable(c.err); got != c.want {
			t.Errorf("IsRetryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestInterceptorDropStillCountsPublish(t *testing.T) {
	b := New()
	defer b.Close()
	sub, err := b.Subscribe("t", 4)
	if err != nil {
		t.Fatal(err)
	}
	var hookBytes atomic.Int64
	b.AddHook(func(_ string, n int) { hookBytes.Add(int64(n)) })
	b.SetInterceptor(func(Message) (bool, error) { return false, nil })
	if err := b.Publish("t", []byte("abcd")); err != nil {
		t.Fatalf("dropped publish must not error: %v", err)
	}
	select {
	case m := <-sub.C:
		t.Fatalf("dropped message delivered: %q", m.Payload)
	default:
	}
	if hookBytes.Load() != 4 {
		t.Fatalf("energy hook saw %d bytes, want 4 (radio charged on loss)", hookBytes.Load())
	}
	// Removing the interceptor restores delivery.
	b.SetInterceptor(nil)
	if err := b.Publish("t", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-sub.C:
		if string(m.Payload) != "ok" {
			t.Fatalf("got %q", m.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("publish after interceptor removal not delivered")
	}
}

func TestInterceptorErrorFailsPublish(t *testing.T) {
	b := New()
	defer b.Close()
	b.SetInterceptor(func(Message) (bool, error) { return false, flakyErr{} })
	err := b.Publish("t", []byte("x"))
	var fe flakyErr
	if !errors.As(err, &fe) {
		t.Fatalf("publish = %v, want interceptor error", err)
	}
}
