package bus

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"
)

// envelope wraps a request payload with the topic the responder should
// reply on.
type envelope struct {
	ReplyTo string          `json:"replyTo"`
	Body    json.RawMessage `json:"body"`
}

var reqCounter atomic.Uint64

// RequestContext publishes body (JSON-encoded) on topic with a unique
// reply-to topic and waits for a single reply, which it decodes into out
// (out may be nil to discard). It returns when the reply arrives, the
// bus closes, or ctx is done — cancellation unblocks the caller
// immediately and leaves nothing behind (the reply subscription is torn
// down on every path).
func RequestContext(ctx context.Context, b *Bus, topic string, body any, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("bus: encode request: %w", err)
	}
	replyTopic := fmt.Sprintf("%s/reply/%d", topic, reqCounter.Add(1))
	sub, err := b.Subscribe(replyTopic, 1)
	if err != nil {
		return err
	}
	defer sub.Unsubscribe()
	env, err := json.Marshal(envelope{ReplyTo: replyTopic, Body: raw})
	if err != nil {
		return fmt.Errorf("bus: encode envelope: %w", err)
	}
	if err := b.Publish(topic, env); err != nil {
		return err
	}
	select {
	case msg, ok := <-sub.C:
		if !ok {
			return ErrClosed
		}
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(msg.Payload, out); err != nil {
			return fmt.Errorf("bus: decode reply: %w", err)
		}
		return nil
	case <-ctx.Done():
		if ctx.Err() == context.DeadlineExceeded {
			return fmt.Errorf("bus: request on %q timed out: %w", topic, ctx.Err())
		}
		return fmt.Errorf("bus: request on %q: %w", topic, ctx.Err())
	}
}

// Request is the context-less convenience wrapper: one round trip with a
// deadline. The timeout rides on a context (not a bare time.After), so
// its timer is released as soon as the reply lands instead of ticking on
// for the full duration.
func Request(b *Bus, topic string, body any, out any, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return RequestContext(ctx, b, topic, body, out)
}

// RespondContext subscribes to a request topic pattern and serves each
// request with fn until the subscription closes (returns nil) or ctx is
// done (returns ctx.Err()). fn receives the decoded request body bytes
// and returns the reply value (JSON-encoded back to the requester).
// RespondContext runs in the calling goroutine; start it with go and
// cancel ctx to shut the responder down.
func RespondContext(ctx context.Context, b *Bus, pattern string, fn func(topic string, body []byte) (any, error)) error {
	sub, err := b.Subscribe(pattern, 64)
	if err != nil {
		return err
	}
	defer sub.Unsubscribe()
	for {
		select {
		case msg, ok := <-sub.C:
			if !ok {
				return nil
			}
			serveRequest(b, msg, fn)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Respond serves until the subscription closes, with no external stop:
// the bus closing is the shutdown signal. Prefer RespondContext anywhere
// the responder must die before the bus does.
func Respond(b *Bus, pattern string, fn func(topic string, body []byte) (any, error)) error {
	return RespondContext(context.Background(), b, pattern, fn)
}

func serveRequest(b *Bus, msg Message, fn func(topic string, body []byte) (any, error)) {
	var env envelope
	if err := json.Unmarshal(msg.Payload, &env); err != nil {
		return // not a request envelope; ignore
	}
	reply, err := fn(msg.Topic, env.Body)
	if err != nil || env.ReplyTo == "" {
		return
	}
	raw, err := json.Marshal(reply)
	if err != nil {
		return
	}
	// Best-effort reply; requester may have timed out.
	//lint:ignore errcheck reply delivery is best-effort by contract; a failed publish only means the requester is gone or the bus closed
	_ = b.Publish(env.ReplyTo, raw)
}
