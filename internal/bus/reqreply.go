package bus

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"
)

// envelope wraps a request payload with the topic the responder should
// reply on.
type envelope struct {
	ReplyTo string          `json:"replyTo"`
	Body    json.RawMessage `json:"body"`
}

var reqCounter atomic.Uint64

// Request publishes body (JSON-encoded) on topic with a unique reply-to
// topic and waits up to timeout for a single reply, which it decodes into
// out (out may be nil to discard). It implements the command/telemetry
// round trip between broker and nodes.
func Request(b *Bus, topic string, body any, out any, timeout time.Duration) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("bus: encode request: %w", err)
	}
	replyTopic := fmt.Sprintf("%s/reply/%d", topic, reqCounter.Add(1))
	sub, err := b.Subscribe(replyTopic, 1)
	if err != nil {
		return err
	}
	defer sub.Unsubscribe()
	env, err := json.Marshal(envelope{ReplyTo: replyTopic, Body: raw})
	if err != nil {
		return fmt.Errorf("bus: encode envelope: %w", err)
	}
	if err := b.Publish(topic, env); err != nil {
		return err
	}
	select {
	case msg, ok := <-sub.C:
		if !ok {
			return ErrClosed
		}
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(msg.Payload, out); err != nil {
			return fmt.Errorf("bus: decode reply: %w", err)
		}
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("bus: request on %q timed out after %v", topic, timeout)
	}
}

// Respond subscribes to a request topic pattern and serves each request
// with fn until the subscription closes. fn receives the decoded request
// body bytes and returns the reply value (JSON-encoded back to the
// requester). Respond runs in the calling goroutine; start it with go.
func Respond(b *Bus, pattern string, fn func(topic string, body []byte) (any, error)) error {
	sub, err := b.Subscribe(pattern, 64)
	if err != nil {
		return err
	}
	for msg := range sub.C {
		var env envelope
		if err := json.Unmarshal(msg.Payload, &env); err != nil {
			continue // not a request envelope; ignore
		}
		reply, err := fn(msg.Topic, env.Body)
		if err != nil || env.ReplyTo == "" {
			continue
		}
		raw, err := json.Marshal(reply)
		if err != nil {
			continue
		}
		// Best-effort reply; requester may have timed out.
		//lint:ignore errcheck reply delivery is best-effort by contract; a failed publish only means the requester is gone or the bus closed
		_ = b.Publish(env.ReplyTo, raw)
	}
	return nil
}
