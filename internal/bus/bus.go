// Package bus is SenseDroid's communication layer: a topic-based
// publish/subscribe message bus with MQTT-style wildcard matching, a
// request/reply helper, and (tcp.go) a TCP transport so brokers and nodes
// can also run as separate processes. The paper's middleware "provides
// libraries and APIs for communication, service discovery, and
// collaboration … for different network topologies"; pub/sub over a broker
// covers client-server, and peers subscribing to each other's topics
// covers peer-to-peer.
package bus

import (
	"errors"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Bus-wide observability handles (no-ops until obs.Enable).
var (
	obsPublished    = obs.GetCounter("bus.publish.messages")
	obsPublishBytes = obs.GetCounter("bus.publish.bytes")
	obsDelivered    = obs.GetCounter("bus.deliver.messages")
	obsDropped      = obs.GetCounter("bus.deliver.dropped")
)

// dropWarned gates the log-once overflow warning: a slow subscriber is a
// deployment problem worth one loud line, not a log flood on every lost
// message. An atomic.Bool rather than sync.Once, so the per-drop path
// allocates no closure. The full count lives in the bus.deliver.dropped
// counter and the per-subscription Dropped() accessor.
var dropWarned atomic.Bool

// noteDrop accounts one overflow-discarded message.
func (s *Subscription) noteDrop() {
	s.dropped.Add(1)
	obsDropped.Inc()
	if !dropWarned.Load() && dropWarned.CompareAndSwap(false, true) {
		//lint:ignore printban deliberate once-per-process operator warning; the flood-free contract is pinned by the drop-warning regression test
		log.Printf("bus: subscriber %q buffer full; dropping messages (see bus.deliver.dropped metric and Subscription.Dropped; this warning is logged once)", s.pattern)
	}
}

// Message is one published datagram.
type Message struct {
	Topic   string
	Payload []byte
}

// Hook observes every publish (for byte accounting / energy metering).
type Hook func(topic string, payloadBytes int)

// Subscription receives matching messages on C until Unsubscribe is
// called. Messages that would overflow the buffer are counted as dropped
// rather than blocking the publisher.
type Subscription struct {
	C       <-chan Message
	pattern string
	id      uint64
	bus     *Bus
	ch      chan Message
	dropped atomic.Int64
}

// Pattern returns the subscription's topic pattern.
func (s *Subscription) Pattern() string { return s.pattern }

// Dropped returns how many messages were discarded due to a full buffer.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Unsubscribe detaches the subscription and closes its channel.
func (s *Subscription) Unsubscribe() { s.bus.unsubscribe(s) }

// Interceptor sits between Publish and fan-out, modelling the transport
// under the bus: return (false, nil) to drop the message silently (the
// publish is still counted and hooks still run — the radio spent the
// energy), or a non-nil error to fail the publish (nothing delivered).
// The chaos harness uses this to route bus traffic through a
// netsim.Network with an active fault plan.
type Interceptor func(msg Message) (deliver bool, err error)

// Bus is an in-process pub/sub broker, safe for concurrent use.
type Bus struct {
	mu          sync.RWMutex
	subs        map[uint64]*Subscription // guarded by mu
	nextID      uint64                   // guarded by mu
	hooks       []Hook                   // guarded by mu
	retained    map[string]Message       // guarded by mu; last-value cache per topic
	closed      bool                     // guarded by mu
	interceptor atomic.Pointer[Interceptor]
}

// ErrClosed reports use of a closed bus.
var ErrClosed = errors.New("bus: closed")

// New returns an empty bus.
func New() *Bus {
	return &Bus{
		subs:     make(map[uint64]*Subscription),
		retained: make(map[string]Message),
	}
}

// AddHook registers a publish observer.
func (b *Bus) AddHook(h Hook) {
	b.mu.Lock()
	b.hooks = append(b.hooks, h)
	b.mu.Unlock()
}

// ValidTopic reports whether a topic is publishable: non-empty, no
// wildcards, no empty segments.
func ValidTopic(topic string) bool {
	if topic == "" {
		return false
	}
	for _, seg := range strings.Split(topic, "/") {
		if seg == "" || seg == "+" || seg == "#" {
			return false
		}
	}
	return true
}

// ValidPattern reports whether a subscription pattern is well formed:
// non-empty segments, "#" only in final position.
func ValidPattern(pattern string) bool {
	if pattern == "" {
		return false
	}
	segs := strings.Split(pattern, "/")
	for i, seg := range segs {
		if seg == "" {
			return false
		}
		if seg == "#" && i != len(segs)-1 {
			return false
		}
	}
	return true
}

// Match reports whether a concrete topic matches a pattern. "+" matches
// exactly one segment; a trailing "#" matches any remainder (including
// none).
func Match(pattern, topic string) bool {
	ps := strings.Split(pattern, "/")
	ts := strings.Split(topic, "/")
	i := 0
	for ; i < len(ps); i++ {
		if ps[i] == "#" {
			return true
		}
		if i >= len(ts) {
			return false
		}
		if ps[i] != "+" && ps[i] != ts[i] {
			return false
		}
	}
	return i == len(ts)
}

// Subscribe registers interest in a pattern with the given channel buffer
// (min 1).
func (b *Bus) Subscribe(pattern string, buffer int) (*Subscription, error) {
	if !ValidPattern(pattern) {
		return nil, fmt.Errorf("bus: invalid pattern %q", pattern)
	}
	if buffer < 1 {
		buffer = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	b.nextID++
	ch := make(chan Message, buffer)
	sub := &Subscription{C: ch, ch: ch, pattern: pattern, id: b.nextID, bus: b}
	b.subs[sub.id] = sub
	// Deliver matching retained messages (last-value cache) so late
	// joiners see current state immediately.
	for topic, msg := range b.retained {
		if Match(pattern, topic) {
			select {
			case ch <- msg:
			default:
				sub.noteDrop()
			}
		}
	}
	return sub, nil
}

func (b *Bus) unsubscribe(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[s.id]; !ok {
		return
	}
	delete(b.subs, s.id)
	close(s.ch)
}

// PublishRetained publishes like Publish and additionally stores the
// message as the topic's last value: future subscribers whose pattern
// matches receive it immediately on Subscribe. A nil payload clears the
// retained value (MQTT semantics).
func (b *Bus) PublishRetained(topic string, payload []byte) error {
	if !ValidTopic(topic) {
		return fmt.Errorf("bus: invalid topic %q", topic)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	if payload == nil {
		delete(b.retained, topic)
	} else {
		b.retained[topic] = Message{Topic: topic, Payload: payload}
	}
	b.mu.Unlock()
	if payload == nil {
		return nil
	}
	return b.Publish(topic, payload)
}

// Retained returns the stored last value for a topic, if any.
func (b *Bus) Retained(topic string) (Message, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	m, ok := b.retained[topic]
	return m, ok
}

// SetInterceptor installs (or, with nil, removes) the transport
// interceptor consulted on every Publish. The interceptor runs outside
// the bus lock, so it may do its own locking but must not publish on
// this bus (the message it is deciding would recurse).
func (b *Bus) SetInterceptor(i Interceptor) {
	if i == nil {
		b.interceptor.Store(nil)
		return
	}
	b.interceptor.Store(&i)
}

// Publish delivers the message to every matching subscription. It never
// blocks: a subscriber with a full buffer has the message counted as
// dropped instead.
func (b *Bus) Publish(topic string, payload []byte) error {
	if !ValidTopic(topic) {
		return fmt.Errorf("bus: invalid topic %q", topic)
	}
	if ip := b.interceptor.Load(); ip != nil {
		deliver, err := (*ip)(Message{Topic: topic, Payload: payload})
		if err != nil {
			return err
		}
		if !deliver {
			// Transmitted but lost in the simulated transport: the publish
			// happened from the publisher's point of view — count it and run
			// the energy hooks — but no subscriber hears it.
			b.mu.RLock()
			if b.closed {
				b.mu.RUnlock()
				return ErrClosed
			}
			hooks := b.hooks
			b.mu.RUnlock()
			obsPublished.Inc()
			obsPublishBytes.Add(int64(len(payload)))
			for _, h := range hooks {
				h(topic, len(payload))
			}
			return nil
		}
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return ErrClosed
	}
	msg := Message{Topic: topic, Payload: payload}
	for _, sub := range b.subs {
		if Match(sub.pattern, topic) {
			select {
			case sub.ch <- msg:
				obsDelivered.Inc()
			default:
				sub.noteDrop()
			}
		}
	}
	hooks := b.hooks
	b.mu.RUnlock()
	obsPublished.Inc()
	obsPublishBytes.Add(int64(len(payload)))
	for _, h := range hooks {
		h(topic, len(payload))
	}
	return nil
}

// ObsHook returns a Hook that breaks publish traffic down by top-level
// topic prefix into obs counters ("bus.topic.<prefix>.messages" and
// ".bytes") — the per-pipeline throughput view. Attach with AddHook; it
// costs one Enabled check per publish while obs is off.
//
// Counter handles are interned once per prefix in a hook-local cache, so
// the steady-state enabled path is one small map lookup — no registry
// RWMutex traffic and no per-publish name allocation.
func ObsHook() Hook {
	type prefixCounters struct {
		messages *obs.Counter
		bytes    *obs.Counter
	}
	var (
		mu      sync.Mutex
		handles = map[string]prefixCounters{}
	)
	return func(topic string, payloadBytes int) {
		if !obs.Enabled() {
			return
		}
		prefix := topic
		if i := strings.IndexByte(topic, '/'); i >= 0 {
			prefix = topic[:i]
		}
		mu.Lock()
		h, ok := handles[prefix]
		if !ok {
			h = prefixCounters{
				//lint:ignore obshot cold path: the handle is interned once per prefix; every later publish hits the local cache
				messages: obs.GetCounter("bus.topic." + prefix + ".messages"),
				//lint:ignore obshot cold path: the handle is interned once per prefix; every later publish hits the local cache
				bytes: obs.GetCounter("bus.topic." + prefix + ".bytes"),
			}
			handles[prefix] = h
		}
		mu.Unlock()
		h.messages.Inc()
		h.bytes.Add(int64(payloadBytes))
	}
}

// SubscribeFunc subscribes a handler callback: a worker goroutine drains
// the subscription and invokes fn for each message until Unsubscribe (or
// bus Close) ends it. Convenient for fire-and-forget consumers that don't
// want to manage a channel loop.
func (b *Bus) SubscribeFunc(pattern string, buffer int, fn func(Message)) (*Subscription, error) {
	sub, err := b.Subscribe(pattern, buffer)
	if err != nil {
		return nil, err
	}
	go func() {
		for msg := range sub.C {
			fn(msg)
		}
	}()
	return sub, nil
}

// SubscriberCount returns how many subscriptions currently match topic.
func (b *Bus) SubscriberCount(topic string) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n := 0
	for _, sub := range b.subs {
		if Match(sub.pattern, topic) {
			n++
		}
	}
	return n
}

// Close shuts the bus; all subscription channels are closed and further
// operations fail with ErrClosed.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, sub := range b.subs {
		delete(b.subs, id)
		close(sub.ch)
	}
}
