package bus

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzParseFrame hammers the TCP wire decoder with arbitrary lines. The
// properties: parseFrame never panics, never accepts a frame the bus
// would have to reject (unknown op, invalid topic or pattern), and any
// frame it does accept survives the json.Encoder encode / parseFrame
// decode round trip that the server and client loops rely on.
func FuzzParseFrame(f *testing.F) {
	f.Add([]byte(`{"op":"pub","topic":"sense/temp/3","payload":"aGVsbG8="}`))
	f.Add([]byte(`{"op":"sub","topic":"sense/#"}`))
	f.Add([]byte(`{"op":"msg","topic":"sense/temp/3/reply","payload":""}`))
	f.Add([]byte(`{"op":"pub","topic":"bad//topic"}`))
	f.Add([]byte(`{"op":"sub","topic":"a/#/b"}`))
	f.Add([]byte(`{"op":"nope","topic":"a"}`))
	f.Add([]byte(`{"op":"pub","topic":"a","payload":"*not base64*"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, line []byte) {
		fr, err := parseFrame(line)
		if err != nil {
			return
		}
		switch fr.Op {
		case "pub", "msg":
			if !ValidTopic(fr.Topic) {
				t.Fatalf("accepted %s frame with invalid topic %q", fr.Op, fr.Topic)
			}
		case "sub":
			if !ValidPattern(fr.Topic) {
				t.Fatalf("accepted sub frame with invalid pattern %q", fr.Topic)
			}
		default:
			t.Fatalf("accepted unknown op %q", fr.Op)
		}
		encoded, err := json.Marshal(fr)
		if err != nil {
			t.Fatalf("marshal of accepted frame failed: %v", err)
		}
		rt, err := parseFrame(encoded)
		if err != nil {
			t.Fatalf("round trip rejected %s: %v", encoded, err)
		}
		if rt.Op != fr.Op || rt.Topic != fr.Topic || !bytes.Equal(rt.Payload, fr.Payload) {
			t.Fatalf("round trip mutated frame: %+v -> %+v", fr, rt)
		}
	})
}

// FuzzTopicMatch hammers the wildcard matcher with arbitrary
// pattern/topic pairs. The properties: Match never panics on any
// input; a valid topic used as its own pattern always matches itself;
// "#" alone matches every valid topic; and a match implies the
// pattern's literal segments appear in order at their positions —
// checked against a naive reference matcher.
func FuzzTopicMatch(f *testing.F) {
	f.Add("a/b/c", "a/b/c")
	f.Add("a/+/c", "a/b/c")
	f.Add("a/#", "a")
	f.Add("a/#", "a/b/c/d")
	f.Add("#", "x/y")
	f.Add("+/register", "nc0/register")
	f.Add("nc0/node/+/measure", "nc0/node/n3/measure")
	f.Add("a//b", "a/b")
	f.Add("a/#/b", "a/x/b")
	f.Add("+", "")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, pattern, topic string) {
		got := Match(pattern, topic) // must never panic
		if ValidTopic(topic) {
			if !Match(topic, topic) {
				t.Fatalf("valid topic %q does not match itself", topic)
			}
			if !Match("#", topic) {
				t.Fatalf(`"#" does not match valid topic %q`, topic)
			}
		}
		if ValidPattern(pattern) && ValidTopic(topic) {
			if want := refMatch(pattern, topic); got != want {
				t.Fatalf("Match(%q, %q) = %v, reference = %v", pattern, topic, got, want)
			}
		}
	})
}

// refMatch is a naive segment-list reference implementation of the
// wildcard rules: "+" one segment, trailing "#" any remainder
// (including none).
func refMatch(pattern, topic string) bool {
	ps := strings.Split(pattern, "/")
	ts := strings.Split(topic, "/")
	for i, p := range ps {
		if p == "#" {
			return true
		}
		if i >= len(ts) {
			return false
		}
		if p != "+" && p != ts[i] {
			return false
		}
	}
	return len(ps) == len(ts)
}
