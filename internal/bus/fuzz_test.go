package bus

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzParseFrame hammers the TCP wire decoder with arbitrary lines. The
// properties: parseFrame never panics, never accepts a frame the bus
// would have to reject (unknown op, invalid topic or pattern), and any
// frame it does accept survives the json.Encoder encode / parseFrame
// decode round trip that the server and client loops rely on.
func FuzzParseFrame(f *testing.F) {
	f.Add([]byte(`{"op":"pub","topic":"sense/temp/3","payload":"aGVsbG8="}`))
	f.Add([]byte(`{"op":"sub","topic":"sense/#"}`))
	f.Add([]byte(`{"op":"msg","topic":"sense/temp/3/reply","payload":""}`))
	f.Add([]byte(`{"op":"pub","topic":"bad//topic"}`))
	f.Add([]byte(`{"op":"sub","topic":"a/#/b"}`))
	f.Add([]byte(`{"op":"nope","topic":"a"}`))
	f.Add([]byte(`{"op":"pub","topic":"a","payload":"*not base64*"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, line []byte) {
		fr, err := parseFrame(line)
		if err != nil {
			return
		}
		switch fr.Op {
		case "pub", "msg":
			if !ValidTopic(fr.Topic) {
				t.Fatalf("accepted %s frame with invalid topic %q", fr.Op, fr.Topic)
			}
		case "sub":
			if !ValidPattern(fr.Topic) {
				t.Fatalf("accepted sub frame with invalid pattern %q", fr.Topic)
			}
		default:
			t.Fatalf("accepted unknown op %q", fr.Op)
		}
		encoded, err := json.Marshal(fr)
		if err != nil {
			t.Fatalf("marshal of accepted frame failed: %v", err)
		}
		rt, err := parseFrame(encoded)
		if err != nil {
			t.Fatalf("round trip rejected %s: %v", encoded, err)
		}
		if rt.Op != fr.Op || rt.Topic != fr.Topic || !bytes.Equal(rt.Payload, fr.Payload) {
			t.Fatalf("round trip mutated frame: %+v -> %+v", fr, rt)
		}
	})
}
