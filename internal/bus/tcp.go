package bus

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
)

// frame is the newline-delimited JSON wire format of the TCP transport.
type frame struct {
	Op      string `json:"op"`                // "pub", "sub", "msg"
	Topic   string `json:"topic,omitempty"`   // pub/msg topic or sub pattern
	Payload []byte `json:"payload,omitempty"` // base64 via encoding/json
}

// parseFrame decodes and validates one wire line. Frames from the
// network are untrusted: a frame with an unknown op, a pub/msg frame
// with an invalid topic, or a sub frame with an invalid pattern is
// rejected here, before any of it reaches the bus. The encode side is
// plain encoding/json (see the json.Encoder writers below), so
// parseFrame(json.Marshal(f)) round-trips any frame it accepts.
func parseFrame(line []byte) (frame, error) {
	var f frame
	if err := json.Unmarshal(line, &f); err != nil {
		return frame{}, fmt.Errorf("bus: bad frame: %w", err)
	}
	switch f.Op {
	case "pub", "msg":
		if !ValidTopic(f.Topic) {
			return frame{}, fmt.Errorf("bus: frame op %q with invalid topic %q", f.Op, f.Topic)
		}
	case "sub":
		if !ValidPattern(f.Topic) {
			return frame{}, fmt.Errorf("bus: sub frame with invalid pattern %q", f.Topic)
		}
	default:
		return frame{}, fmt.Errorf("bus: unknown frame op %q", f.Op)
	}
	return f, nil
}

// Server bridges a Bus onto a TCP listener so nodes in other processes
// can participate (the cmd/sensedroid-broker transport).
type Server struct {
	bus *Bus
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // guarded by mu
	closed bool                  // guarded by mu
	wg     sync.WaitGroup
}

// NewServer starts serving the bus on addr (e.g. "127.0.0.1:0"). The
// returned server is already accepting.
func NewServer(b *Bus, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bus: listen: %w", err)
	}
	s := &Server{bus: b, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			//lint:ignore errcheck closing a just-accepted conn during shutdown; nothing to report the error to
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		//lint:ignore errcheck teardown after the serve loop exited; the close error has no consumer
		_ = conn.Close()
	}()
	var (
		writeMu sync.Mutex
		subs    []*Subscription
	)
	defer func() {
		for _, sub := range subs {
			sub.Unsubscribe()
		}
	}()
	enc := json.NewEncoder(conn)
	send := func(f frame) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		return enc.Encode(f)
	}
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for scanner.Scan() {
		f, err := parseFrame(scanner.Bytes())
		if err != nil {
			continue // unparseable or invalid frames from a peer are dropped
		}
		switch f.Op {
		case "pub":
			//lint:ignore errcheck remote publishes are fire-and-forget; an invalid topic or closed bus is not reportable over this one-way frame
			_ = s.bus.Publish(f.Topic, f.Payload)
		case "sub":
			sub, err := s.bus.Subscribe(f.Topic, 256)
			if err != nil {
				continue
			}
			subs = append(subs, sub)
			// The forwarder joins the server's WaitGroup: Close must not
			// return while any goroutine still writes to a conn. It exits
			// when serveConn's teardown unsubscribes (closing sub.C) or
			// the first failed write reports the conn gone.
			s.wg.Add(1)
			go func(sub *Subscription) {
				defer s.wg.Done()
				for msg := range sub.C {
					if err := send(frame{Op: "msg", Topic: msg.Topic, Payload: msg.Payload}); err != nil {
						return
					}
				}
			}(sub)
		}
	}
}

// Close stops accepting and drops all connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	//lint:ignore errcheck shutdown path; the listener error has no consumer
	_ = s.ln.Close()
	for conn := range s.conns {
		//lint:ignore errcheck shutdown path; per-conn close errors have no consumer
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Client is a TCP participant on a remote bus.
type Client struct {
	conn      net.Conn
	enc       *json.Encoder
	readDone  chan struct{} // closed when readLoop exits
	closeOnce sync.Once

	mu     sync.Mutex
	subs   []chan Message // guarded by mu
	closed bool           // guarded by mu
}

// Dial connects to a bus server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bus: dial: %w", err)
	}
	c := &Client{conn: conn, enc: json.NewEncoder(conn), readDone: make(chan struct{})}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer close(c.readDone)
	scanner := bufio.NewScanner(c.conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for scanner.Scan() {
		f, err := parseFrame(scanner.Bytes())
		if err != nil || f.Op != "msg" {
			continue
		}
		msg := Message{Topic: f.Topic, Payload: f.Payload}
		c.mu.Lock()
		for _, ch := range c.subs {
			select {
			case ch <- msg:
			default:
			}
		}
		c.mu.Unlock()
	}
	// Connection gone: close subscriber channels.
	c.mu.Lock()
	for _, ch := range c.subs {
		close(ch)
	}
	c.subs = nil
	c.closed = true
	c.mu.Unlock()
}

// Publish sends a message to the remote bus.
func (c *Client) Publish(topic string, payload []byte) error {
	if !ValidTopic(topic) {
		return fmt.Errorf("bus: invalid topic %q", topic)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return c.enc.Encode(frame{Op: "pub", Topic: topic, Payload: payload})
}

// Subscribe asks the server for a pattern; matching messages arrive on the
// returned channel. All of the client's subscriptions share one TCP
// stream, so each channel receives every subscribed message that matches
// any pattern; callers filter with Match if they need exactness.
func (c *Client) Subscribe(pattern string) (<-chan Message, error) {
	if !ValidPattern(pattern) {
		return nil, fmt.Errorf("bus: invalid pattern %q", pattern)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if err := c.enc.Encode(frame{Op: "sub", Topic: pattern}); err != nil {
		return nil, err
	}
	ch := make(chan Message, 256)
	c.subs = append(c.subs, ch)
	return ch, nil
}

// Close drops the connection and joins the read loop: when Close
// returns, the readLoop goroutine has exited and every subscriber
// channel is closed. Safe to call more than once, and also after the
// server side already dropped the connection (the socket still needs
// closing on this side either way).
func (c *Client) Close() error {
	var err error
	c.closeOnce.Do(func() { err = c.conn.Close() })
	<-c.readDone
	return err
}

// ErrClientClosed reports use after Close.
var ErrClientClosed = errors.New("bus: client closed")
