package bus

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/obs"
)

// Retry observability (no-ops until obs.Enable). attempts counts every
// request attempt made under a retry policy; recovered counts calls that
// succeeded on a retry (attempt > 1); giveups counts calls that exhausted
// their budget or hit a terminal error. attempts_per_call shows how hard
// the retry layer is working — a drift toward the high buckets means the
// transport is degrading faster than the policy can hide.
var (
	obsRetryAttempts  = obs.GetCounter("bus.retry.attempts")
	obsRetryRecovered = obs.GetCounter("bus.retry.recovered")
	obsRetryGiveups   = obs.GetCounter("bus.retry.giveups")
	obsRetryPerCall   = obs.GetHistogram("bus.retry.attempts_per_call", obs.CountBuckets)
)

// RetryPolicy bounds RequestRetryContext. The zero value is usable: 3
// attempts, 10ms base backoff capped at 32× base, no per-attempt
// deadline beyond the caller's context, jitter seeded with 0.
type RetryPolicy struct {
	Attempts       int           // total attempts including the first (min 1); 0 = 3
	AttemptTimeout time.Duration // per-attempt deadline; 0 = outer ctx only
	BaseBackoff    time.Duration // backoff before the second attempt; 0 = 10ms
	MaxBackoff     time.Duration // backoff cap; 0 = 32× BaseBackoff
	Seed           int64         // jitter seed: a fixed seed replays the exact backoff schedule
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 32 * p.BaseBackoff
	}
	return p
}

// IsRetryable classifies an error for retry purposes. An error that
// implements Retryable() bool speaks for itself (netsim's NodeDownError
// does — a crashed peer may restart). A per-attempt deadline is
// transient by nature. Everything else — cancellation, a closed bus,
// encode failures — is terminal: retrying cannot fix it.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	var r interface{ Retryable() bool }
	if errors.As(err, &r) {
		return r.Retryable()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, ErrClosed) {
		return false
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// RequestRetryContext is RequestContext under a retry policy: capped
// exponential backoff with deterministic seeded jitter and a per-call
// attempt budget. Terminal errors (IsRetryable == false) and outer-ctx
// expiry stop the loop immediately; only transient failures burn budget.
// The final error wraps the last attempt's failure.
func RequestRetryContext(ctx context.Context, b *Bus, topic string, body, out any, pol RetryPolicy) error {
	pol = pol.withDefaults()
	rng := rand.New(rand.NewSource(pol.Seed))
	var err error
	attempt := 0
	for attempt < pol.Attempts {
		attempt++
		obsRetryAttempts.Inc()
		err = requestAttempt(ctx, b, topic, body, out, pol.AttemptTimeout)
		if err == nil {
			if attempt > 1 {
				obsRetryRecovered.Inc()
			}
			obsRetryPerCall.Observe(float64(attempt))
			return nil
		}
		if ctx.Err() != nil || !IsRetryable(err) || attempt == pol.Attempts {
			break
		}
		backoff := pol.BaseBackoff << (attempt - 1)
		if backoff <= 0 || backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
		// Deterministic jitter in [backoff/2, backoff]: seeded, so a replay
		// with the same policy walks the same schedule.
		delay := backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			obsRetryGiveups.Inc()
			obsRetryPerCall.Observe(float64(attempt))
			return fmt.Errorf("bus: request on %q: %w", topic, ctx.Err())
		}
	}
	obsRetryGiveups.Inc()
	obsRetryPerCall.Observe(float64(attempt))
	return fmt.Errorf("bus: request on %q failed after %d attempt(s): %w", topic, attempt, err)
}

// RequestRetry is the context-less convenience wrapper around
// RequestRetryContext: the overall deadline rides on an internal context
// while the policy bounds the attempts within it.
func RequestRetry(b *Bus, topic string, body, out any, timeout time.Duration, pol RetryPolicy) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return RequestRetryContext(ctx, b, topic, body, out, pol)
}

// requestAttempt runs one RequestContext round, bounded by the
// per-attempt timeout when one is set.
func requestAttempt(ctx context.Context, b *Bus, topic string, body, out any, per time.Duration) error {
	if per > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, per)
		defer cancel()
	}
	return RequestContext(ctx, b, topic, body, out)
}
