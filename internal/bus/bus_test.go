package bus

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMatch(t *testing.T) {
	cases := []struct {
		pattern, topic string
		want           bool
	}{
		{"a/b/c", "a/b/c", true},
		{"a/b/c", "a/b", false},
		{"a/b", "a/b/c", false},
		{"a/+/c", "a/b/c", true},
		{"a/+/c", "a/x/c", true},
		{"a/+/c", "a/b/d", false},
		{"+/+/+", "a/b/c", true},
		{"a/#", "a/b/c", true},
		{"a/#", "a", true}, // MQTT: '#' also matches the parent level itself
		{"#", "anything/at/all", true},
		{"a/b/#", "a/b", true},
		{"a/#", "b", false},
		{"a/b/#", "a/b/c/d", true},
	}
	for _, c := range cases {
		if got := Match(c.pattern, c.topic); got != c.want {
			t.Errorf("Match(%q,%q)=%v want %v", c.pattern, c.topic, got, c.want)
		}
	}
}

func TestValidTopicAndPattern(t *testing.T) {
	for _, bad := range []string{"", "a//b", "a/+/b", "a/#", "+"} {
		if ValidTopic(bad) {
			t.Errorf("ValidTopic(%q) should be false", bad)
		}
	}
	for _, good := range []string{"a", "a/b", "nc/0/cmd"} {
		if !ValidTopic(good) {
			t.Errorf("ValidTopic(%q) should be true", good)
		}
	}
	for _, bad := range []string{"", "a//b", "#/a", "a/#/b"} {
		if ValidPattern(bad) {
			t.Errorf("ValidPattern(%q) should be false", bad)
		}
	}
	for _, good := range []string{"a/+/b", "a/#", "#", "+"} {
		if !ValidPattern(good) {
			t.Errorf("ValidPattern(%q) should be true", good)
		}
	}
}

func TestPublishSubscribe(t *testing.T) {
	b := New()
	sub, err := b.Subscribe("sensors/+/temp", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("sensors/n1/temp", []byte("21.5")); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("sensors/n1/humidity", []byte("55")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-sub.C:
		if msg.Topic != "sensors/n1/temp" || string(msg.Payload) != "21.5" {
			t.Fatalf("got %+v", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}
	select {
	case msg := <-sub.C:
		t.Fatalf("unexpected second message %+v", msg)
	default:
	}
}

func TestPublishInvalidTopic(t *testing.T) {
	b := New()
	if err := b.Publish("a/+/b", nil); err == nil {
		t.Fatal("want invalid topic error")
	}
	if _, err := b.Subscribe("a//b", 1); err == nil {
		t.Fatal("want invalid pattern error")
	}
}

func TestUnsubscribeClosesChannel(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe("x", 1)
	sub.Unsubscribe()
	if _, ok := <-sub.C; ok {
		t.Fatal("channel should be closed")
	}
	sub.Unsubscribe() // idempotent
	if b.SubscriberCount("x") != 0 {
		t.Fatal("subscriber not removed")
	}
}

func TestFullBufferDrops(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe("x", 1)
	b.Publish("x", []byte("1"))
	b.Publish("x", []byte("2")) // buffer full → dropped
	if sub.Dropped() != 1 {
		t.Fatalf("dropped=%d, want 1", sub.Dropped())
	}
}

func TestHooks(t *testing.T) {
	b := New()
	var mu sync.Mutex
	total := 0
	b.AddHook(func(topic string, n int) {
		mu.Lock()
		total += n
		mu.Unlock()
	})
	b.Publish("a", []byte("12345"))
	b.Publish("b", []byte("xy"))
	mu.Lock()
	defer mu.Unlock()
	if total != 7 {
		t.Fatalf("hook total %d, want 7", total)
	}
}

func TestCloseBus(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe("x", 1)
	b.Close()
	if _, ok := <-sub.C; ok {
		t.Fatal("channel should be closed")
	}
	if err := b.Publish("x", nil); err != ErrClosed {
		t.Fatalf("err=%v, want ErrClosed", err)
	}
	if _, err := b.Subscribe("x", 1); err != ErrClosed {
		t.Fatalf("err=%v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestRequestReply(t *testing.T) {
	b := New()
	go Respond(b, "svc/echo", func(topic string, body []byte) (any, error) {
		return map[string]string{"echo": string(body)}, nil
	})
	// Give the responder a moment to subscribe.
	deadline := time.Now().Add(time.Second)
	for b.SubscriberCount("svc/echo") == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	var out map[string]string
	if err := Request(b, "svc/echo", "ping", &out, time.Second); err != nil {
		t.Fatal(err)
	}
	if out["echo"] != `"ping"` {
		t.Fatalf("reply %v", out)
	}
}

func TestRequestTimeout(t *testing.T) {
	b := New()
	err := Request(b, "svc/nobody", "x", nil, 20*time.Millisecond)
	if err == nil {
		t.Fatal("want timeout error")
	}
}

func TestConcurrentPublishers(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe("#", 4096)
	var wg sync.WaitGroup
	const publishers, each = 8, 100
	for i := 0; i < publishers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				b.Publish("load/test", []byte("x"))
			}
		}()
	}
	wg.Wait()
	got := 0
	for {
		select {
		case <-sub.C:
			got++
		default:
			if got != publishers*each {
				t.Fatalf("received %d of %d", got, publishers*each)
			}
			return
		}
	}
}

func TestTCPServerClientRoundTrip(t *testing.T) {
	b := New()
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ch, err := cli.Subscribe("remote/#")
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the server registered the subscription.
	deadline := time.Now().Add(2 * time.Second)
	for b.SubscriberCount("remote/x") == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Local → remote.
	if err := b.Publish("remote/x", []byte("down")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-ch:
		if msg.Topic != "remote/x" || string(msg.Payload) != "down" {
			t.Fatalf("got %+v", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no downstream delivery")
	}
	// Remote → local.
	local, _ := b.Subscribe("up/#", 4)
	if err := cli.Publish("up/y", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-local.C:
		if msg.Topic != "up/y" || string(msg.Payload) != "hello" {
			t.Fatalf("got %+v", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no upstream delivery")
	}
}

func TestTCPClientValidation(t *testing.T) {
	b := New()
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Publish("bad//topic", nil); err == nil {
		t.Fatal("want topic error")
	}
	if _, err := cli.Subscribe("#/bad"); err == nil {
		t.Fatal("want pattern error")
	}
}

func TestDialRefused(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("want connection error")
	}
}

// Property: a concrete topic always matches itself as a pattern, and "#"
// matches every valid topic.
func TestPropMatchReflexive(t *testing.T) {
	f := func(segs []uint8) bool {
		if len(segs) == 0 {
			return true
		}
		topic := ""
		for i, s := range segs {
			if i > 0 {
				topic += "/"
			}
			topic += string(rune('a' + s%26))
		}
		return Match(topic, topic) && Match("#", topic)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPublish(b *testing.B) {
	bus := New()
	sub, _ := bus.Subscribe("bench/+", 1)
	defer sub.Unsubscribe()
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish("bench/x", payload)
		select {
		case <-sub.C:
		default:
		}
	}
}

func TestRetainedDeliveredToLateJoiner(t *testing.T) {
	b := New()
	if err := b.PublishRetained("state/zone1", []byte("hot")); err != nil {
		t.Fatal(err)
	}
	sub, err := b.Subscribe("state/#", 4)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-sub.C:
		if msg.Topic != "state/zone1" || string(msg.Payload) != "hot" {
			t.Fatalf("retained delivery %+v", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("retained message not delivered on subscribe")
	}
	// Live subscribers also got it at publish time.
	if m, ok := b.Retained("state/zone1"); !ok || string(m.Payload) != "hot" {
		t.Fatalf("Retained lookup %v %v", m, ok)
	}
}

func TestRetainedOverwriteAndClear(t *testing.T) {
	b := New()
	b.PublishRetained("s", []byte("v1"))
	b.PublishRetained("s", []byte("v2"))
	if m, _ := b.Retained("s"); string(m.Payload) != "v2" {
		t.Fatalf("retained not overwritten: %s", m.Payload)
	}
	// nil payload clears.
	if err := b.PublishRetained("s", nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Retained("s"); ok {
		t.Fatal("retained not cleared")
	}
	sub, _ := b.Subscribe("s", 1)
	select {
	case m := <-sub.C:
		t.Fatalf("cleared retained still delivered: %+v", m)
	default:
	}
}

func TestRetainedValidation(t *testing.T) {
	b := New()
	if err := b.PublishRetained("bad//topic", []byte("x")); err == nil {
		t.Fatal("want topic error")
	}
	b.Close()
	if err := b.PublishRetained("s", []byte("x")); err != ErrClosed {
		t.Fatalf("err=%v, want ErrClosed", err)
	}
}

func TestSubscribeFunc(t *testing.T) {
	b := New()
	var mu sync.Mutex
	var got []string
	sub, err := b.SubscribeFunc("evt/#", 16, func(m Message) {
		mu.Lock()
		got = append(got, string(m.Payload))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Publish("evt/a", []byte("1"))
	b.Publish("evt/b", []byte("2"))
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("handler saw %d messages, want 2", n)
		}
		time.Sleep(time.Millisecond)
	}
	sub.Unsubscribe()
	if _, err := b.SubscribeFunc("a//b", 1, func(Message) {}); err == nil {
		t.Fatal("want pattern error")
	}
}
