package contextproc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/basis"
	"repro/internal/sensor"
)

// window collects n vertical-axis accelerometer samples for a scenario.
func window(t *testing.T, s sensor.MotionScenario, n int, noise float64, seed int64) []float64 {
	t.Helper()
	m, err := sensor.AccelModel(s)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sensor.NewProbe("a", sensor.Accelerometer, 3,
		sensor.Config{RateHz: 64, NoiseSigma: noise, Seed: seed}, m)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := p.CollectAxis(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	return xs
}

func TestExtractValidation(t *testing.T) {
	if _, err := Extract([]float64{1, 2}, 10); err == nil {
		t.Fatal("want short-window error")
	}
	if _, err := Extract([]float64{1, 2, 3, 4}, 0); err == nil {
		t.Fatal("want rate error")
	}
}

func TestExtractKnownSinusoid(t *testing.T) {
	// 4 Hz sinusoid sampled at 64 Hz.
	n, rate := 128, 64.0
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 3 + 2*math.Sin(2*math.Pi*4*float64(i)/rate)
	}
	f, err := Extract(xs, rate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Mean-3) > 1e-9 {
		t.Fatalf("mean %v", f.Mean)
	}
	if math.Abs(f.Variance-2) > 0.05 { // amplitude²/2
		t.Fatalf("variance %v, want ~2", f.Variance)
	}
	if math.Abs(f.DominantHz-4) > 0.51 {
		t.Fatalf("dominant %v Hz, want 4", f.DominantHz)
	}
	// A 4 Hz sinusoid crosses its mean 8 times per second.
	if math.Abs(f.ZeroCrossHz-8) > 1 {
		t.Fatalf("zero-cross %v Hz, want ~8", f.ZeroCrossHz)
	}
	if math.Abs(f.PeakToPeak-4) > 0.01 {
		t.Fatalf("peak-to-peak %v, want 4", f.PeakToPeak)
	}
}

func TestClassifyActivityScenarios(t *testing.T) {
	cases := map[sensor.MotionScenario]Activity{
		sensor.MotionIdle:    ActivityIdle,
		sensor.MotionWalking: ActivityWalking,
		sensor.MotionDriving: ActivityDriving,
	}
	for scen, want := range cases {
		xs := window(t, scen, 256, 0.05, 3)
		f, err := Extract(xs, 64)
		if err != nil {
			t.Fatal(err)
		}
		if got := ClassifyActivity(f); got != want {
			t.Fatalf("%s classified as %s (features %+v)", scen, got, f)
		}
	}
}

func TestIsDriving(t *testing.T) {
	xs := window(t, sensor.MotionDriving, 256, 0.05, 4)
	f, _ := Extract(xs, 64)
	if !IsDriving(f) {
		t.Fatal("driving window not detected")
	}
	xs = window(t, sensor.MotionIdle, 256, 0.05, 5)
	f, _ = Extract(xs, 64)
	if IsDriving(f) {
		t.Fatal("idle window misdetected as driving")
	}
}

func TestNearestCentroidClassifier(t *testing.T) {
	train := map[Activity][]Features{}
	scens := map[Activity]sensor.MotionScenario{
		ActivityIdle:    sensor.MotionIdle,
		ActivityWalking: sensor.MotionWalking,
		ActivityDriving: sensor.MotionDriving,
	}
	for act, scen := range scens {
		for seed := int64(0); seed < 6; seed++ {
			f, err := Extract(window(t, scen, 256, 0.1, 100+seed), 64)
			if err != nil {
				t.Fatal(err)
			}
			train[act] = append(train[act], f)
		}
	}
	clf, err := TrainNC(train)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for act, scen := range scens {
		for seed := int64(50); seed < 56; seed++ {
			f, _ := Extract(window(t, scen, 256, 0.1, 1000+seed), 64)
			if clf.Classify(f) == act {
				correct++
			}
			total++
		}
	}
	if correct < total-1 {
		t.Fatalf("NC classifier accuracy %d/%d", correct, total)
	}
}

func TestTrainNCErrors(t *testing.T) {
	if _, err := TrainNC(nil); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := TrainNC(map[Activity][]Features{ActivityIdle: nil}); err == nil {
		t.Fatal("want empty-class error")
	}
}

func TestIsIndoor(t *testing.T) {
	indoor := EnvReading{GPSSatellites: 2, GPSAccuracyM: 45, WiFiRSSIdBm: -45, WiFiAPCount: 8}
	outdoor := EnvReading{GPSSatellites: 9, GPSAccuracyM: 4, WiFiRSSIdBm: -86, WiFiAPCount: 1}
	if !IsIndoor(indoor) {
		t.Fatal("indoor reading not detected")
	}
	if IsIndoor(outdoor) {
		t.Fatal("outdoor reading misdetected")
	}
	// Partial evidence: weak GPS alone (2 votes) is already indoor.
	partial := EnvReading{GPSSatellites: 2, GPSAccuracyM: 45, WiFiRSSIdBm: -90, WiFiAPCount: 0}
	if !IsIndoor(partial) {
		t.Fatal("GPS-only indoor evidence not detected")
	}
}

func TestNewPipelineValidation(t *testing.T) {
	phi, err := basis.OperatorFor(basis.KindDCT, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPipeline(nil, 10, 5); err == nil {
		t.Fatal("want nil-basis error")
	}
	if _, err := NewPipeline(phi, 0, 5); err == nil {
		t.Fatal("want m error")
	}
	if _, err := NewPipeline(phi, 65, 5); err == nil {
		t.Fatal("want m>n error")
	}
	if _, err := NewPipeline(phi, 10, 0); err == nil {
		t.Fatal("want k error")
	}
	if _, err := NewPipeline(phi, 10, 11); err == nil {
		t.Fatal("want k>m error")
	}
}

func TestPipelineReconstructDrivingWindow(t *testing.T) {
	// The paper's Fig. 4 setting: 256-sample accelerometer window, 30
	// random samples, reconstruction good enough to classify.
	xs := window(t, sensor.MotionDriving, 256, 0.02, 6)
	phi, err := basis.OperatorFor(basis.KindDFT, 256)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(phi, 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	comp, full, nmse, err := p.ClassifyCompressive(xs, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	if full != ActivityDriving {
		t.Fatalf("full-window classification %s", full)
	}
	if comp != full {
		t.Fatalf("compressive classification %s != full %s (NMSE %v)", comp, full, nmse)
	}
	if nmse > 0.3 {
		t.Fatalf("reconstruction NMSE %v too large", nmse)
	}
}

func TestPipelineWindowLengthError(t *testing.T) {
	op, err := basis.OperatorFor(basis.KindDCT, 64)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewPipeline(op, 16, 4)
	if _, _, err := p.Reconstruct(make([]float64, 32), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("want window length error")
	}
}

func TestFuseGroup(t *testing.T) {
	members := []MemberContext{
		{Member: "a", Activity: ActivityWalking, Stress: 0.2, Indoor: true},
		{Member: "b", Activity: ActivityWalking, Stress: 0.4, Indoor: false},
		{Member: "c", Activity: ActivityDriving, Stress: 0.6, Indoor: false},
	}
	g, err := FuseGroup(members)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size != 3 || g.MajorityAct != ActivityWalking {
		t.Fatalf("group %+v", g)
	}
	if math.Abs(g.StressQuotient-0.4) > 1e-9 {
		t.Fatalf("stress quotient %v", g.StressQuotient)
	}
	if math.Abs(g.IndoorFraction-1.0/3) > 1e-9 {
		t.Fatalf("indoor fraction %v", g.IndoorFraction)
	}
	if _, err := FuseGroup(nil); err == nil {
		t.Fatal("want empty-group error")
	}
}

func TestStressIndex(t *testing.T) {
	if v := StressIndex(35, ActivityIdle); v != 0 {
		t.Fatalf("quiet idle stress %v", v)
	}
	if v := StressIndex(95, ActivityDriving); v != 1 {
		t.Fatalf("loud driving stress %v, want clamp 1", v)
	}
	if StressIndex(60, ActivityDriving) <= StressIndex(60, ActivityWalking) {
		t.Fatal("driving should add stress")
	}
}

func BenchmarkExtract256(b *testing.B) {
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*2*float64(i)/64) + 0.1*math.Sin(2*math.Pi*11*float64(i)/64)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(xs, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineClassify(b *testing.B) {
	m, _ := sensor.AccelModel(sensor.MotionDriving)
	p, _ := sensor.NewProbe("a", sensor.Accelerometer, 3, sensor.Config{RateHz: 64, Seed: 1}, m)
	xs, _ := p.CollectAxis(256, 2)
	phi, err := basis.OperatorFor(basis.KindDFT, 256)
	if err != nil {
		b.Fatal(err)
	}
	pipe, _ := NewPipeline(phi, 30, 8)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := pipe.ClassifyCompressive(xs, 64, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCountStepsWalking(t *testing.T) {
	// 4 s of walking at 64 Hz with a 2 Hz gait → ~8 steps.
	xs := window(t, sensor.MotionWalking, 256, 0.05, 60)
	steps, err := CountSteps(xs, 64)
	if err != nil {
		t.Fatal(err)
	}
	if steps < 6 || steps > 10 {
		t.Fatalf("steps %d over 4 s of 2 Hz gait, want ~8", steps)
	}
	cad, err := Cadence(xs, 64)
	if err != nil {
		t.Fatal(err)
	}
	if cad < 1.5 || cad > 2.5 {
		t.Fatalf("cadence %v steps/s, want ~2", cad)
	}
}

func TestCountStepsIdleIsZero(t *testing.T) {
	xs := window(t, sensor.MotionIdle, 256, 0.05, 61)
	steps, err := CountSteps(xs, 64)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 0 {
		t.Fatalf("idle window counted %d steps", steps)
	}
}

func TestCountStepsValidation(t *testing.T) {
	if _, err := CountSteps([]float64{1, 2}, 64); err == nil {
		t.Fatal("want short-window error")
	}
	if _, err := CountSteps(make([]float64, 64), 0); err == nil {
		t.Fatal("want rate error")
	}
}
