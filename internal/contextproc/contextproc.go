// Package contextproc implements SenseDroid's context determination layer
// (paper §3): feature extraction from sensor windows, activity/mobility
// classification, the IsDriving and IsIndoor virtual context sensors, group
// context fusion, and — the paper's key energy idea — a *temporal
// compressive sensing* pipeline that reconstructs a full sensor window
// from a few random samples before classifying, so contexts can be
// computed "with similar accuracy while saving energy consumptions".
package contextproc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/basis"
	"repro/internal/cs"
	"repro/internal/mat"
)

// Features summarizes one window of scalar sensor samples.
type Features struct {
	Mean        float64
	Variance    float64
	Energy      float64 // mean squared value after mean removal
	DominantHz  float64 // frequency with the largest spectral power (excl. DC)
	ZeroCrossHz float64 // mean-crossing rate, crossings per second
	PeakToPeak  float64
}

// Extract computes features for a window sampled at rateHz.
func Extract(xs []float64, rateHz float64) (Features, error) {
	if len(xs) < 4 {
		return Features{}, errors.New("contextproc: window too short")
	}
	if rateHz <= 0 {
		return Features{}, errors.New("contextproc: sample rate must be positive")
	}
	f := Features{Mean: mat.Mean(xs), Variance: mat.Variance(xs)}
	f.Energy = f.Variance
	lo, hi := xs[0], xs[0]
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	f.PeakToPeak = hi - lo
	// Mean-crossing rate.
	crossings := 0
	prev := xs[0] - f.Mean
	for _, v := range xs[1:] {
		cur := v - f.Mean
		if (cur > 0 && prev < 0) || (cur < 0 && prev > 0) {
			crossings++
		}
		if cur != 0 {
			prev = cur
		}
	}
	dur := float64(len(xs)-1) / rateHz
	if dur > 0 {
		f.ZeroCrossHz = float64(crossings) / dur
	}
	f.DominantHz = dominantFrequency(xs, rateHz, f.Mean)
	return f, nil
}

// dominantFrequency scans the Goertzel power at each DFT bin above DC and
// returns the frequency of the strongest bin.
func dominantFrequency(xs []float64, rateHz, mean float64) float64 {
	n := len(xs)
	bestPow, bestHz := 0.0, 0.0
	for k := 1; k <= n/2; k++ {
		w := 2 * math.Pi * float64(k) / float64(n)
		cosw := math.Cos(w)
		// Goertzel recurrence.
		s0, s1, s2 := 0.0, 0.0, 0.0
		for _, v := range xs {
			s0 = v - mean + 2*cosw*s1 - s2
			s2, s1 = s1, s0
		}
		pow := s1*s1 + s2*s2 - 2*cosw*s1*s2
		if pow > bestPow {
			bestPow = pow
			bestHz = float64(k) * rateHz / float64(n)
		}
	}
	return bestHz
}

// Activity is a recognized user motion state.
type Activity string

// Recognized activities.
const (
	ActivityIdle    Activity = "idle"
	ActivityWalking Activity = "walking"
	ActivityDriving Activity = "driving"
)

// ClassifyActivity maps accelerometer-window features to an activity with
// interpretable thresholds: near-zero energy is idle; strong gait-band
// (1.5–3 Hz) periodicity with high energy is walking; remaining sustained
// vibration is driving.
func ClassifyActivity(f Features) Activity {
	if f.Variance < 0.05 {
		return ActivityIdle
	}
	if f.DominantHz >= 1.5 && f.DominantHz <= 3.0 && f.Variance > 2.0 {
		return ActivityWalking
	}
	return ActivityDriving
}

// IsDriving reports the driving context from an accelerometer window.
func IsDriving(f Features) bool { return ClassifyActivity(f) == ActivityDriving }

// --- Nearest-centroid classifier ---------------------------------------------

// Centroid is a labeled point in feature space for the trainable
// classifier (the paper's "machine learning techniques for activity
// modeling" alternative to fixed thresholds).
type Centroid struct {
	Label Activity
	Point []float64
}

// NCClassifier is a nearest-centroid classifier over standardized feature
// vectors.
type NCClassifier struct {
	centroids []Centroid
	mean, std []float64
}

// featureVector flattens the discriminative features.
func featureVector(f Features) []float64 {
	return []float64{f.Variance, f.DominantHz, f.ZeroCrossHz, f.PeakToPeak}
}

// TrainNC fits a nearest-centroid classifier from labeled feature windows.
func TrainNC(samples map[Activity][]Features) (*NCClassifier, error) {
	if len(samples) == 0 {
		return nil, errors.New("contextproc: no training data")
	}
	dim := len(featureVector(Features{}))
	// Global standardization.
	var all [][]float64
	for _, fs := range samples {
		for _, f := range fs {
			all = append(all, featureVector(f))
		}
	}
	if len(all) == 0 {
		return nil, errors.New("contextproc: empty training classes")
	}
	mean := make([]float64, dim)
	std := make([]float64, dim)
	for _, v := range all {
		for j, x := range v {
			mean[j] += x
		}
	}
	for j := range mean {
		mean[j] /= float64(len(all))
	}
	for _, v := range all {
		for j, x := range v {
			d := x - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(all)))
		if std[j] == 0 {
			std[j] = 1
		}
	}
	clf := &NCClassifier{mean: mean, std: std}
	for label, fs := range samples {
		if len(fs) == 0 {
			continue
		}
		c := make([]float64, dim)
		for _, f := range fs {
			v := featureVector(f)
			for j := range c {
				c[j] += (v[j] - mean[j]) / std[j]
			}
		}
		for j := range c {
			c[j] /= float64(len(fs))
		}
		clf.centroids = append(clf.centroids, Centroid{Label: label, Point: c})
	}
	return clf, nil
}

// Classify returns the nearest centroid's label.
func (c *NCClassifier) Classify(f Features) Activity {
	v := featureVector(f)
	for j := range v {
		v[j] = (v[j] - c.mean[j]) / c.std[j]
	}
	best, bestD := c.centroids[0].Label, math.Inf(1)
	for _, cent := range c.centroids {
		d := 0.0
		for j := range v {
			dd := v[j] - cent.Point[j]
			d += dd * dd
		}
		if d < bestD {
			bestD, best = d, cent.Label
		}
	}
	return best
}

// --- IsIndoor -----------------------------------------------------------------

// EnvReading is one joint GPS+WiFi observation.
type EnvReading struct {
	GPSSatellites float64 // visible satellite count
	GPSAccuracyM  float64 // reported horizontal accuracy, meters
	WiFiRSSIdBm   float64 // strongest AP RSSI
	WiFiAPCount   float64 // visible AP count
}

// IsIndoor fuses GPS and WiFi evidence into the IsIndoor flag the paper
// uses as its energy-efficient context example: weak GPS and strong/dense
// WiFi indicate being inside a building.
func IsIndoor(r EnvReading) bool {
	votes := 0
	if r.GPSSatellites < 4 {
		votes++
	}
	if r.GPSAccuracyM > 20 {
		votes++
	}
	if r.WiFiRSSIdBm > -60 {
		votes++
	}
	if r.WiFiAPCount > 4 {
		votes++
	}
	return votes >= 2
}

// --- Temporal compressive context pipeline ------------------------------------

// Pipeline reconstructs a full N-sample sensor window from M ≪ N randomly
// timed samples (temporal compressive sensing in the basis Φ) so that
// downstream context classification runs on the reconstruction. M/N is the
// duty cycle — the energy knob.
type Pipeline struct {
	N, M, K int            // window length, measurements, sparsity budget
	Phi     basis.Operator // N-point orthonormal basis operator (DCT/DFT)
}

// NewPipeline validates and builds a pipeline.
func NewPipeline(phi basis.Operator, m, k int) (*Pipeline, error) {
	if phi == nil || phi.Dim() == 0 {
		return nil, errors.New("contextproc: pipeline needs a basis operator")
	}
	n := phi.Dim()
	if m <= 0 || m > n {
		return nil, fmt.Errorf("contextproc: measurements %d outside (0,%d]", m, n)
	}
	if k <= 0 || k > m {
		return nil, fmt.Errorf("contextproc: sparsity %d outside (0,%d]", k, m)
	}
	return &Pipeline{N: n, M: m, K: k, Phi: phi}, nil
}

// Reconstruct samples M random instants of the window and recovers the
// full window with OMP. It returns the reconstruction and the sampled
// instant indices (the only instants the sensor had to be powered for).
func (p *Pipeline) Reconstruct(window []float64, rng *rand.Rand) ([]float64, []int, error) {
	if len(window) != p.N {
		return nil, nil, fmt.Errorf("contextproc: window length %d, want %d", len(window), p.N)
	}
	locs, err := cs.RandomLocations(rng, p.N, p.M)
	if err != nil {
		return nil, nil, err
	}
	y, err := cs.Measure(window, locs, rng, nil)
	if err != nil {
		return nil, nil, err
	}
	res, err := cs.OMPOp(p.Phi, locs, y, p.K, 1e-9)
	if err != nil {
		return nil, nil, err
	}
	return res.Xhat, locs, nil
}

// ClassifyCompressive runs the full paper pipeline: compressively sample
// the window, reconstruct, extract features, classify. It returns the
// activity decided from the reconstruction and the one from the full
// window (for accuracy accounting), plus the reconstruction NMSE.
func (p *Pipeline) ClassifyCompressive(window []float64, rateHz float64, rng *rand.Rand) (compressed, full Activity, nmse float64, err error) {
	xhat, _, err := p.Reconstruct(window, rng)
	if err != nil {
		return "", "", 0, err
	}
	fc, err := Extract(xhat, rateHz)
	if err != nil {
		return "", "", 0, err
	}
	ff, err := Extract(window, rateHz)
	if err != nil {
		return "", "", 0, err
	}
	return ClassifyActivity(fc), ClassifyActivity(ff), cs.NMSE(window, xhat), nil
}

// --- Group context fusion -------------------------------------------------------

// MemberContext is one group member's shared context snapshot.
type MemberContext struct {
	Member   string
	Activity Activity
	Stress   float64 // [0,1]
	Indoor   bool
}

// GroupContext is the fused view of a collaborating group (the paper's
// "family health indicator" / "combined stress quotient").
type GroupContext struct {
	Size           int
	MajorityAct    Activity
	StressQuotient float64 // mean member stress
	IndoorFraction float64
}

// FuseGroup aggregates member contexts.
func FuseGroup(members []MemberContext) (GroupContext, error) {
	if len(members) == 0 {
		return GroupContext{}, errors.New("contextproc: empty group")
	}
	counts := map[Activity]int{}
	g := GroupContext{Size: len(members)}
	indoor := 0
	for _, m := range members {
		counts[m.Activity]++
		g.StressQuotient += m.Stress
		if m.Indoor {
			indoor++
		}
	}
	g.StressQuotient /= float64(len(members))
	g.IndoorFraction = float64(indoor) / float64(len(members))
	best, bestN := Activity(""), -1
	for a, n := range counts {
		if n > bestN || (n == bestN && a < best) {
			best, bestN = a, n
		}
	}
	g.MajorityAct = best
	return g, nil
}

// StressIndex maps ambient sound level and activity to a [0,1] stress
// surrogate (a deliberately simple stand-in for the StressSense-style
// acoustic models the paper cites).
func StressIndex(micDB float64, act Activity) float64 {
	s := (micDB - 35) / 55 // 35 dB quiet → 0, 90 dB loud → 1
	if act == ActivityDriving {
		s += 0.15
	}
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return s
}
