package contextproc

import (
	"errors"
	"math"

	"repro/internal/mat"
)

// CountSteps estimates walking steps in a vertical-axis accelerometer
// window — the pedometer virtual sensor (the UbiFit-style activity
// tracking the paper's wellness use case builds on). Peaks are detected
// on the mean-removed signal with an adaptive threshold (a fraction of
// the window's standard deviation) and a refractory period that rejects
// double-counting within a physiologically impossible gap (< 0.25 s, i.e.
// above 4 steps/s).
func CountSteps(xs []float64, rateHz float64) (int, error) {
	if len(xs) < 8 {
		return 0, errors.New("contextproc: window too short for step counting")
	}
	if rateHz <= 0 {
		return 0, errors.New("contextproc: sample rate must be positive")
	}
	mean := mat.Mean(xs)
	sd := math.Sqrt(mat.Variance(xs))
	if sd < 0.3 {
		return 0, nil // too quiet to be walking
	}
	threshold := 0.6 * sd
	refractory := int(0.25 * rateHz)
	if refractory < 1 {
		refractory = 1
	}
	steps := 0
	lastPeak := -refractory - 1
	for i := 1; i < len(xs)-1; i++ {
		v := xs[i] - mean
		if v < threshold {
			continue
		}
		if xs[i] >= xs[i-1] && xs[i] >= xs[i+1] && i-lastPeak > refractory {
			steps++
			lastPeak = i
		}
	}
	return steps, nil
}

// Cadence returns steps per second for a window.
func Cadence(xs []float64, rateHz float64) (float64, error) {
	steps, err := CountSteps(xs, rateHz)
	if err != nil {
		return 0, err
	}
	dur := float64(len(xs)) / rateHz
	return float64(steps) / dur, nil
}
