package contextproc

import (
	"math/rand"
	"testing"
)

func TestSmoothActivitiesRemovesGlitches(t *testing.T) {
	// A long walking run with isolated misclassifications.
	raw := make([]Activity, 20)
	for i := range raw {
		raw[i] = ActivityWalking
	}
	raw[5] = ActivityDriving
	raw[13] = ActivityIdle
	out, err := SmoothActivities(raw, SmootherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range out {
		if a != ActivityWalking {
			t.Fatalf("window %d smoothed to %s, want walking", i, a)
		}
	}
}

func TestSmoothActivitiesKeepsRealTransitions(t *testing.T) {
	// A genuine transition (sustained run of the new activity) survives.
	raw := make([]Activity, 20)
	for i := range raw {
		if i < 10 {
			raw[i] = ActivityIdle
		} else {
			raw[i] = ActivityDriving
		}
	}
	out, err := SmoothActivities(raw, SmootherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != ActivityIdle || out[19] != ActivityDriving {
		t.Fatalf("transition lost: %v", out)
	}
	// The change point stays near window 10.
	change := -1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			change = i
			break
		}
	}
	if change < 8 || change > 12 {
		t.Fatalf("change point at %d, want near 10", change)
	}
}

func TestSmoothActivitiesImprovesNoisyAccuracy(t *testing.T) {
	// Ground truth alternates in long blocks; classifier flips 15% of
	// windows. Smoothing must improve agreement.
	rng := rand.New(rand.NewSource(5))
	truth := make([]Activity, 120)
	for i := range truth {
		truth[i] = allActivities[(i/30)%3]
	}
	raw := make([]Activity, len(truth))
	copy(raw, truth)
	for i := range raw {
		if rng.Float64() < 0.15 {
			raw[i] = allActivities[rng.Intn(3)]
		}
	}
	out, err := SmoothActivities(raw, SmootherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	accRaw, accSmooth := 0, 0
	for i := range truth {
		if raw[i] == truth[i] {
			accRaw++
		}
		if out[i] == truth[i] {
			accSmooth++
		}
	}
	if accSmooth <= accRaw {
		t.Fatalf("smoothing did not help: raw %d vs smooth %d of %d", accRaw, accSmooth, len(truth))
	}
}

func TestSmoothActivitiesValidation(t *testing.T) {
	if _, err := SmoothActivities(nil, SmootherConfig{}); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := SmoothActivities([]Activity{"flying"}, SmootherConfig{}); err == nil {
		t.Fatal("want unknown-activity error")
	}
	// Degenerate config values fall back to defaults rather than failing.
	out, err := SmoothActivities([]Activity{ActivityIdle}, SmootherConfig{StayProb: 2, EmitCorrect: -1})
	if err != nil || len(out) != 1 {
		t.Fatalf("defaults not applied: %v %v", out, err)
	}
}
