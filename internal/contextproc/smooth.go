package contextproc

import (
	"errors"
	"math"
)

// Activity sequences classified window-by-window flicker at transitions
// and under noise. SmoothActivities runs Viterbi decoding over the raw
// per-window classifications with a sticky transition prior, recovering
// the most likely true activity sequence — the standard post-processing
// for continuous context sensing.

// SmootherConfig tunes the HMM used by SmoothActivities.
type SmootherConfig struct {
	// StayProb is the prior probability of remaining in the same activity
	// between adjacent windows (default 0.9). Higher = stickier.
	StayProb float64
	// EmitCorrect is the probability the raw classifier labels the true
	// activity correctly (default 0.8); errors spread evenly over the
	// other activities.
	EmitCorrect float64
}

var allActivities = []Activity{ActivityIdle, ActivityWalking, ActivityDriving}

// SmoothActivities returns the maximum-likelihood activity sequence given
// the raw per-window classifications, under a sticky-transition HMM.
func SmoothActivities(raw []Activity, cfg SmootherConfig) ([]Activity, error) {
	if len(raw) == 0 {
		return nil, errors.New("contextproc: empty activity sequence")
	}
	if cfg.StayProb <= 0 || cfg.StayProb >= 1 {
		cfg.StayProb = 0.9
	}
	if cfg.EmitCorrect <= 0 || cfg.EmitCorrect >= 1 {
		cfg.EmitCorrect = 0.8
	}
	nStates := len(allActivities)
	idx := map[Activity]int{}
	for i, a := range allActivities {
		idx[a] = i
	}
	for _, a := range raw {
		if _, ok := idx[a]; !ok {
			return nil, errors.New("contextproc: unknown activity " + string(a))
		}
	}
	logStay := math.Log(cfg.StayProb)
	logMove := math.Log((1 - cfg.StayProb) / float64(nStates-1))
	logHit := math.Log(cfg.EmitCorrect)
	logMiss := math.Log((1 - cfg.EmitCorrect) / float64(nStates-1))

	// Viterbi.
	t := len(raw)
	delta := make([][]float64, t)
	back := make([][]int, t)
	for i := range delta {
		delta[i] = make([]float64, nStates)
		back[i] = make([]int, nStates)
	}
	obs0 := idx[raw[0]]
	for s := 0; s < nStates; s++ {
		e := logMiss
		if s == obs0 {
			e = logHit
		}
		delta[0][s] = math.Log(1.0/float64(nStates)) + e
	}
	for step := 1; step < t; step++ {
		obs := idx[raw[step]]
		for s := 0; s < nStates; s++ {
			bestPrev, bestVal := 0, math.Inf(-1)
			for p := 0; p < nStates; p++ {
				trans := logMove
				if p == s {
					trans = logStay
				}
				if v := delta[step-1][p] + trans; v > bestVal {
					bestVal, bestPrev = v, p
				}
			}
			e := logMiss
			if s == obs {
				e = logHit
			}
			delta[step][s] = bestVal + e
			back[step][s] = bestPrev
		}
	}
	// Backtrack.
	best, bestVal := 0, math.Inf(-1)
	for s := 0; s < nStates; s++ {
		if delta[t-1][s] > bestVal {
			bestVal, best = delta[t-1][s], s
		}
	}
	out := make([]Activity, t)
	for step := t - 1; step >= 0; step-- {
		out[step] = allActivities[best]
		best = back[step][best]
	}
	return out, nil
}
