package query

import (
	"strings"
	"testing"
)

// FuzzCompile pins the error-never-panic contract of the query language:
// arbitrary input must either compile or return an error — the lexer and
// recursive-descent parser must not panic, hang, or accept trailing
// garbage. Whatever compiles must also evaluate without panicking under
// representative environments (including type-mismatched and missing
// fields) and recompile from its own Source.
func FuzzCompile(f *testing.F) {
	for _, seed := range []string{
		"temp > 30 && zone == 2",
		"activity == 'driving' || (stress >= 0.7 && indoor)",
		"!(a < 1) && b != 'x'",
		"value >= 70 && col < 4",
		"zone == 0",
		"((((x))))",
		"a == b == c",
		"1 < 2 < 3",
		"'unterminated",
		"&& value",
		"value >",
		"(value > 1",
		"value > 1)",
		"a ! b",
		"",
		"   ",
		"🌡 > 30",
		"value > 1e308 && value < -1e308",
		"a\x00b",
		strings.Repeat("(", 100) + "x" + strings.Repeat(")", 100),
		strings.Repeat("!", 500) + "true",
		"a && " + strings.Repeat("b || ", 50) + "c",
	} {
		f.Add(seed)
	}
	envs := []Env{
		{},
		{"value": 7.5, "row": 1, "col": 2, "zone": 0},
		{"temp": 30.5, "indoor": true, "activity": "walking", "stress": 0.2, "a": 1, "b": "x", "c": false, "x": 0.0, "true": true},
		{"value": "not-a-number", "zone": 1.5, "indoor": "yes"},
	}
	f.Fuzz(func(t *testing.T, src string) {
		flt, err := Compile(src)
		if err != nil {
			return // rejected input: error is the contract, panic is the bug
		}
		for _, env := range envs {
			if _, err := flt.Eval(env); err != nil {
				continue // type/missing-field errors are fine; panics are not
			}
		}
		if flt.Source() != src {
			t.Fatalf("Source() = %q, want %q", flt.Source(), src)
		}
		if _, err := Compile(flt.Source()); err != nil {
			t.Fatalf("accepted input does not recompile: %q: %v", src, err)
		}
	})
}
