// Package query implements SenseDroid's on-demand query and filtering
// layer: a small predicate expression language compiled once and evaluated
// against live sensor/context records, so collaborating users receive
// "only the relevant information".
//
// Expressions support numeric/string/bool fields, comparisons
// (== != < <= > >=), boolean connectives (&& || !), and parentheses:
//
//	temp > 30 && zone == 2
//	activity == 'driving' || (stress >= 0.7 && indoor)
package query

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Env supplies field values during evaluation. Supported value types:
// float64, int (converted), string, bool.
type Env map[string]any

// Val is a typed field value: a small union that moves through
// evaluation by value, so neither the caller nor the evaluator boxes
// anything on the hot path. The zero Val is invalid.
type Val struct {
	kind valKind
	num  float64
	str  string
	b    bool
}

type valKind uint8

const (
	valInvalid valKind = iota
	valNum
	valStr
	valBool
)

// Num makes a numeric Val.
func Num(f float64) Val { return Val{kind: valNum, num: f} }

// Str makes a string Val.
func Str(s string) Val { return Val{kind: valStr, str: s} }

// Bool makes a boolean Val.
func Bool(b bool) Val { return Val{kind: valBool, b: b} }

func (v Val) kindString() string {
	switch v.kind {
	case valNum:
		return "number"
	case valStr:
		return "string"
	case valBool:
		return "bool"
	}
	return "invalid value"
}

// Lookuper supplies typed field values during evaluation. Implementing
// it with a concrete struct (rather than filling an Env map) keeps
// per-evaluation allocations at zero — see serve's cell environment.
type Lookuper interface {
	// Lookup returns the field's value and whether the field exists. An
	// existing field of an unsupported type returns the zero (invalid)
	// Val, which evaluation turns into a type error.
	Lookup(name string) (Val, bool)
}

// Lookup adapts the map environment: ints widen to float64, unsupported
// types surface as invalid Vals.
func (e Env) Lookup(name string) (Val, bool) {
	v, ok := e[name]
	if !ok {
		return Val{}, false
	}
	switch x := v.(type) {
	case float64:
		return Num(x), true
	case int:
		return Num(float64(x)), true
	case int64:
		return Num(float64(x)), true
	case string:
		return Str(x), true
	case bool:
		return Bool(x), true
	default:
		return Val{}, true
	}
}

// Filter is a compiled predicate.
type Filter struct {
	root node
	src  string
}

// Source returns the original expression text.
func (f *Filter) Source() string { return f.src }

// ErrEval reports a type error or missing field during evaluation.
var ErrEval = errors.New("query: evaluation error")

// Compile parses an expression into a reusable filter.
func Compile(src string) (*Filter, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("query: unexpected %q at end of expression", p.toks[p.pos].text)
	}
	return &Filter{root: root, src: src}, nil
}

// Eval evaluates the filter against a map environment.
func (f *Filter) Eval(env Env) (bool, error) { return f.EvalWith(env) }

// EvalWith evaluates the filter against any Lookuper. With a concrete
// environment type this path performs no allocations.
func (f *Filter) EvalWith(env Lookuper) (bool, error) {
	v, err := f.root.eval(env)
	if err != nil {
		return false, err
	}
	if v.kind != valBool {
		return false, fmt.Errorf("%w: expression is not boolean (got %s)", ErrEval, v.kindString())
	}
	return v.b, nil
}

// --- Lexer -------------------------------------------------------------------

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokOp // == != < <= > >= && || !
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
	num  float64
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "("})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")"})
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < len(src) && src[j] != quote {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("query: unterminated string at offset %d", i)
			}
			toks = append(toks, token{kind: tokString, text: src[i+1 : j]})
			i = j + 1
		case strings.ContainsRune("=!<>&|", rune(c)):
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||":
				toks = append(toks, token{kind: tokOp, text: two})
				i += 2
			default:
				switch c {
				case '<', '>', '!':
					toks = append(toks, token{kind: tokOp, text: string(c)})
					i++
				default:
					return nil, fmt.Errorf("query: bad operator at offset %d", i)
				}
			}
		case c >= '0' && c <= '9' || c == '.' || c == '-':
			j := i
			if c == '-' {
				j++
			}
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				(j > i && (src[j] == '+' || src[j] == '-') && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			n, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("query: bad number %q: %w", src[i:j], err)
			}
			toks = append(toks, token{kind: tokNumber, num: n, text: src[i:j]})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) ||
				src[j] == '_' || src[j] == '.' || src[j] == '/') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	if len(toks) == 0 {
		return nil, errors.New("query: empty expression")
	}
	return toks, nil
}

// --- Parser ------------------------------------------------------------------

type node interface {
	eval(env Lookuper) (Val, error)
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *parser) accept(kind tokKind, text string) bool {
	if t, ok := p.peek(); ok && t.kind == kind && (text == "" || t.text == text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOp, "||") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binNode{op: "||", l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOp, "&&") {
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		left = &binNode{op: "&&", l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseCmp() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if t, ok := p.peek(); ok && t.kind == tokOp {
		switch t.text {
		case "==", "!=", "<", "<=", ">", ">=":
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &binNode{op: t.text, l: left, r: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseUnary() (node, error) {
	if p.accept(tokOp, "!") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &notNode{inner}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (node, error) {
	t, ok := p.peek()
	if !ok {
		return nil, errors.New("query: unexpected end of expression")
	}
	switch t.kind {
	case tokLParen:
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(tokRParen, "") {
			return nil, errors.New("query: missing ')'")
		}
		return inner, nil
	case tokNumber:
		p.pos++
		return &litNode{Num(t.num)}, nil
	case tokString:
		p.pos++
		return &litNode{Str(t.text)}, nil
	case tokIdent:
		p.pos++
		switch t.text {
		case "true":
			return &litNode{Bool(true)}, nil
		case "false":
			return &litNode{Bool(false)}, nil
		}
		return &fieldNode{t.text}, nil
	default:
		return nil, fmt.Errorf("query: unexpected token %q", t.text)
	}
}

// --- Evaluation ----------------------------------------------------------------

type litNode struct{ v Val }

func (n *litNode) eval(Lookuper) (Val, error) { return n.v, nil }

type fieldNode struct{ name string }

func (n *fieldNode) eval(env Lookuper) (Val, error) {
	v, ok := env.Lookup(n.name)
	if !ok {
		return Val{}, fmt.Errorf("%w: unknown field %q", ErrEval, n.name)
	}
	if v.kind == valInvalid {
		return Val{}, fmt.Errorf("%w: unsupported field type for %q", ErrEval, n.name)
	}
	return v, nil
}

type notNode struct{ inner node }

func (n *notNode) eval(env Lookuper) (Val, error) {
	v, err := n.inner.eval(env)
	if err != nil {
		return Val{}, err
	}
	if v.kind != valBool {
		return Val{}, fmt.Errorf("%w: ! applied to non-boolean %s", ErrEval, v.kindString())
	}
	return Bool(!v.b), nil
}

type binNode struct {
	op   string
	l, r node
}

func (n *binNode) eval(env Lookuper) (Val, error) {
	lv, err := n.l.eval(env)
	if err != nil {
		return Val{}, err
	}
	// Short-circuit logical operators.
	if n.op == "&&" || n.op == "||" {
		if lv.kind != valBool {
			return Val{}, fmt.Errorf("%w: %s applied to non-boolean %s", ErrEval, n.op, lv.kindString())
		}
		if n.op == "&&" && !lv.b {
			return Bool(false), nil
		}
		if n.op == "||" && lv.b {
			return Bool(true), nil
		}
		rv, err := n.r.eval(env)
		if err != nil {
			return Val{}, err
		}
		if rv.kind != valBool {
			return Val{}, fmt.Errorf("%w: %s applied to non-boolean %s", ErrEval, n.op, rv.kindString())
		}
		return rv, nil
	}
	rv, err := n.r.eval(env)
	if err != nil {
		return Val{}, err
	}
	return compare(n.op, lv, rv)
}

func compare(op string, l, r Val) (Val, error) {
	if l.kind != r.kind {
		return Val{}, fmt.Errorf("%w: cannot compare %s %s %s", ErrEval, l.kindString(), op, r.kindString())
	}
	switch l.kind {
	case valNum:
		switch op {
		case "==":
			return Bool(l.num == r.num), nil
		case "!=":
			return Bool(l.num != r.num), nil
		case "<":
			return Bool(l.num < r.num), nil
		case "<=":
			return Bool(l.num <= r.num), nil
		case ">":
			return Bool(l.num > r.num), nil
		case ">=":
			return Bool(l.num >= r.num), nil
		}
	case valStr:
		switch op {
		case "==":
			return Bool(l.str == r.str), nil
		case "!=":
			return Bool(l.str != r.str), nil
		case "<":
			return Bool(l.str < r.str), nil
		case "<=":
			return Bool(l.str <= r.str), nil
		case ">":
			return Bool(l.str > r.str), nil
		case ">=":
			return Bool(l.str >= r.str), nil
		}
	case valBool:
		switch op {
		case "==":
			return Bool(l.b == r.b), nil
		case "!=":
			return Bool(l.b != r.b), nil
		default:
			return Val{}, fmt.Errorf("%w: ordering not defined on booleans", ErrEval)
		}
	}
	return Val{}, fmt.Errorf("%w: cannot compare %s %s %s", ErrEval, l.kindString(), op, r.kindString())
}
