// Package query implements SenseDroid's on-demand query and filtering
// layer: a small predicate expression language compiled once and evaluated
// against live sensor/context records, so collaborating users receive
// "only the relevant information".
//
// Expressions support numeric/string/bool fields, comparisons
// (== != < <= > >=), boolean connectives (&& || !), and parentheses:
//
//	temp > 30 && zone == 2
//	activity == 'driving' || (stress >= 0.7 && indoor)
package query

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Env supplies field values during evaluation. Supported value types:
// float64, int (converted), string, bool.
type Env map[string]any

// Filter is a compiled predicate.
type Filter struct {
	root node
	src  string
}

// Source returns the original expression text.
func (f *Filter) Source() string { return f.src }

// ErrEval reports a type error or missing field during evaluation.
var ErrEval = errors.New("query: evaluation error")

// Compile parses an expression into a reusable filter.
func Compile(src string) (*Filter, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("query: unexpected %q at end of expression", p.toks[p.pos].text)
	}
	return &Filter{root: root, src: src}, nil
}

// Eval evaluates the filter against an environment.
func (f *Filter) Eval(env Env) (bool, error) {
	v, err := f.root.eval(env)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("%w: expression is not boolean (got %T)", ErrEval, v)
	}
	return b, nil
}

// --- Lexer -------------------------------------------------------------------

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokOp // == != < <= > >= && || !
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
	num  float64
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "("})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")"})
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < len(src) && src[j] != quote {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("query: unterminated string at offset %d", i)
			}
			toks = append(toks, token{kind: tokString, text: src[i+1 : j]})
			i = j + 1
		case strings.ContainsRune("=!<>&|", rune(c)):
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||":
				toks = append(toks, token{kind: tokOp, text: two})
				i += 2
			default:
				switch c {
				case '<', '>', '!':
					toks = append(toks, token{kind: tokOp, text: string(c)})
					i++
				default:
					return nil, fmt.Errorf("query: bad operator at offset %d", i)
				}
			}
		case c >= '0' && c <= '9' || c == '.' || c == '-':
			j := i
			if c == '-' {
				j++
			}
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				(j > i && (src[j] == '+' || src[j] == '-') && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			n, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("query: bad number %q: %w", src[i:j], err)
			}
			toks = append(toks, token{kind: tokNumber, num: n, text: src[i:j]})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) ||
				src[j] == '_' || src[j] == '.' || src[j] == '/') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	if len(toks) == 0 {
		return nil, errors.New("query: empty expression")
	}
	return toks, nil
}

// --- Parser ------------------------------------------------------------------

type node interface {
	eval(env Env) (any, error)
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *parser) accept(kind tokKind, text string) bool {
	if t, ok := p.peek(); ok && t.kind == kind && (text == "" || t.text == text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOp, "||") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binNode{op: "||", l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOp, "&&") {
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		left = &binNode{op: "&&", l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseCmp() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if t, ok := p.peek(); ok && t.kind == tokOp {
		switch t.text {
		case "==", "!=", "<", "<=", ">", ">=":
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &binNode{op: t.text, l: left, r: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseUnary() (node, error) {
	if p.accept(tokOp, "!") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &notNode{inner}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (node, error) {
	t, ok := p.peek()
	if !ok {
		return nil, errors.New("query: unexpected end of expression")
	}
	switch t.kind {
	case tokLParen:
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(tokRParen, "") {
			return nil, errors.New("query: missing ')'")
		}
		return inner, nil
	case tokNumber:
		p.pos++
		return &litNode{t.num}, nil
	case tokString:
		p.pos++
		return &litNode{t.text}, nil
	case tokIdent:
		p.pos++
		switch t.text {
		case "true":
			return &litNode{true}, nil
		case "false":
			return &litNode{false}, nil
		}
		return &fieldNode{t.text}, nil
	default:
		return nil, fmt.Errorf("query: unexpected token %q", t.text)
	}
}

// --- Evaluation ----------------------------------------------------------------

type litNode struct{ v any }

func (n *litNode) eval(Env) (any, error) { return n.v, nil }

type fieldNode struct{ name string }

func (n *fieldNode) eval(env Env) (any, error) {
	v, ok := env[n.name]
	if !ok {
		return nil, fmt.Errorf("%w: unknown field %q", ErrEval, n.name)
	}
	switch x := v.(type) {
	case int:
		return float64(x), nil
	case int64:
		return float64(x), nil
	case float64, string, bool:
		return x, nil
	default:
		return nil, fmt.Errorf("%w: unsupported field type %T for %q", ErrEval, v, n.name)
	}
}

type notNode struct{ inner node }

func (n *notNode) eval(env Env) (any, error) {
	v, err := n.inner.eval(env)
	if err != nil {
		return nil, err
	}
	b, ok := v.(bool)
	if !ok {
		return nil, fmt.Errorf("%w: ! applied to non-boolean %T", ErrEval, v)
	}
	return !b, nil
}

type binNode struct {
	op   string
	l, r node
}

func (n *binNode) eval(env Env) (any, error) {
	lv, err := n.l.eval(env)
	if err != nil {
		return nil, err
	}
	// Short-circuit logical operators.
	if n.op == "&&" || n.op == "||" {
		lb, ok := lv.(bool)
		if !ok {
			return nil, fmt.Errorf("%w: %s applied to non-boolean %T", ErrEval, n.op, lv)
		}
		if n.op == "&&" && !lb {
			return false, nil
		}
		if n.op == "||" && lb {
			return true, nil
		}
		rv, err := n.r.eval(env)
		if err != nil {
			return nil, err
		}
		rb, ok := rv.(bool)
		if !ok {
			return nil, fmt.Errorf("%w: %s applied to non-boolean %T", ErrEval, n.op, rv)
		}
		return rb, nil
	}
	rv, err := n.r.eval(env)
	if err != nil {
		return nil, err
	}
	return compare(n.op, lv, rv)
}

func compare(op string, l, r any) (any, error) {
	switch lv := l.(type) {
	case float64:
		rvf, ok := r.(float64)
		if !ok {
			return nil, fmt.Errorf("%w: comparing number with %T", ErrEval, r)
		}
		switch op {
		case "==":
			return lv == rvf, nil
		case "!=":
			return lv != rvf, nil
		case "<":
			return lv < rvf, nil
		case "<=":
			return lv <= rvf, nil
		case ">":
			return lv > rvf, nil
		case ">=":
			return lv >= rvf, nil
		}
	case string:
		rvs, ok := r.(string)
		if !ok {
			return nil, fmt.Errorf("%w: comparing string with %T", ErrEval, r)
		}
		switch op {
		case "==":
			return lv == rvs, nil
		case "!=":
			return lv != rvs, nil
		case "<":
			return lv < rvs, nil
		case "<=":
			return lv <= rvs, nil
		case ">":
			return lv > rvs, nil
		case ">=":
			return lv >= rvs, nil
		}
	case bool:
		rvb, ok := r.(bool)
		if !ok {
			return nil, fmt.Errorf("%w: comparing bool with %T", ErrEval, r)
		}
		switch op {
		case "==":
			return lv == rvb, nil
		case "!=":
			return lv != rvb, nil
		default:
			return nil, fmt.Errorf("%w: ordering not defined on booleans", ErrEval)
		}
	}
	return nil, fmt.Errorf("%w: cannot compare %T %s %T", ErrEval, l, op, r)
}
