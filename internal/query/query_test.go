package query

import (
	"testing"
	"testing/quick"
)

func mustCompile(t *testing.T, src string) *Filter {
	t.Helper()
	f, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return f
}

func evalTrue(t *testing.T, src string, env Env) bool {
	t.Helper()
	ok, err := mustCompile(t, src).Eval(env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return ok
}

func TestNumericComparisons(t *testing.T) {
	env := Env{"temp": 31.5, "zone": 2}
	cases := map[string]bool{
		"temp > 30":              true,
		"temp >= 31.5":           true,
		"temp < 30":              false,
		"temp <= 31.5":           true,
		"temp == 31.5":           true,
		"temp != 31.5":           false,
		"zone == 2":              true,
		"temp > 30 && zone == 2": true,
		"temp > 40 || zone == 2": true,
		"temp > 40 && zone == 2": false,
		"temp > -50":             true,
	}
	for src, want := range cases {
		if got := evalTrue(t, src, env); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestStringAndBool(t *testing.T) {
	env := Env{"activity": "driving", "indoor": true}
	cases := map[string]bool{
		"activity == 'driving'":           true,
		`activity == "walking"`:           false,
		"activity != 'walking'":           true,
		"indoor":                          true,
		"!indoor":                         false,
		"indoor == true":                  true,
		"indoor != false":                 true,
		"activity == 'driving' && indoor": true,
		"activity < 'walking'":            true, // lexicographic
	}
	for src, want := range cases {
		if got := evalTrue(t, src, env); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestParensAndPrecedence(t *testing.T) {
	env := Env{"a": 1.0, "b": 2.0, "c": 3.0}
	// && binds tighter than ||.
	if !evalTrue(t, "a == 1 || b == 9 && c == 9", env) {
		t.Fatal("precedence wrong")
	}
	if evalTrue(t, "(a == 1 || b == 9) && c == 9", env) {
		t.Fatal("parens ignored")
	}
	if !evalTrue(t, "!(a == 2)", env) {
		t.Fatal("negated paren group")
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand references a missing field; short-circuit must
	// prevent the evaluation error.
	env := Env{"a": 1.0}
	if !evalTrue(t, "a == 1 || missing > 5", env) {
		t.Fatal("|| short-circuit failed")
	}
	if evalTrue(t, "a == 2 && missing > 5", env) {
		t.Fatal("&& short-circuit failed")
	}
}

func TestCompileErrors(t *testing.T) {
	for _, src := range []string{
		"", "a ==", "== 3", "a && ", "(a == 1", "a == 1)",
		"a = 1", "a @ b", "'unterminated", "a == 1 extra",
	} {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []struct {
		src string
		env Env
	}{
		{"missing > 1", Env{}},
		{"a > 'str'", Env{"a": 1.0}},
		{"a && true", Env{"a": 1.0}},
		{"!a", Env{"a": "str"}},
		{"a < b", Env{"a": true, "b": false}},
		{"a == 1", Env{"a": []int{1}}},
		{"a", Env{"a": 3.0}}, // non-boolean result
	}
	for _, c := range cases {
		f, err := Compile(c.src)
		if err != nil {
			t.Fatalf("Compile(%q): %v", c.src, err)
		}
		if _, err := f.Eval(c.env); err == nil {
			t.Errorf("Eval(%q) should fail", c.src)
		}
	}
}

func TestIntFieldsPromote(t *testing.T) {
	if !evalTrue(t, "n == 5", Env{"n": 5}) {
		t.Fatal("int field should compare as number")
	}
	if !evalTrue(t, "n == 5", Env{"n": int64(5)}) {
		t.Fatal("int64 field should compare as number")
	}
}

func TestIdentWithPathChars(t *testing.T) {
	env := Env{"node1/temp": 25.0, "ctx.stress": 0.5}
	if !evalTrue(t, "node1/temp == 25", env) {
		t.Fatal("slash identifier failed")
	}
	if !evalTrue(t, "ctx.stress < 0.7", env) {
		t.Fatal("dotted identifier failed")
	}
}

func TestSourceRoundTrip(t *testing.T) {
	f := mustCompile(t, "a > 1")
	if f.Source() != "a > 1" {
		t.Fatalf("Source=%q", f.Source())
	}
}

// Property: numeric comparisons agree with Go's operators for random
// operands.
func TestPropNumericAgreement(t *testing.T) {
	f := func(a, b float64) bool {
		env := Env{"a": a, "b": b}
		for src, want := range map[string]bool{
			"a < b":  a < b,
			"a <= b": a <= b,
			"a > b":  a > b,
			"a >= b": a >= b,
			"a == b": a == b,
			"a != b": a != b,
		} {
			flt, err := Compile(src)
			if err != nil {
				return false
			}
			got, err := flt.Eval(env)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompileEval(b *testing.B) {
	env := Env{"temp": 31.5, "zone": 2.0, "activity": "driving"}
	f, err := Compile("temp > 30 && zone == 2 && activity == 'driving'")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}

// Robustness: arbitrary byte strings never panic the compiler; they either
// compile or return an error.
func TestPropCompileNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Compile(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// typedEnv is a concrete Lookuper: evaluation through it must not box.
type typedEnv struct {
	temp float64
	zone float64
	act  string
}

func (e *typedEnv) Lookup(name string) (Val, bool) {
	switch name {
	case "temp":
		return Num(e.temp), true
	case "zone":
		return Num(e.zone), true
	case "activity":
		return Str(e.act), true
	}
	return Val{}, false
}

// EvalWith on a concrete environment agrees with Eval on the equivalent
// map environment.
func TestEvalWithMatchesEnv(t *testing.T) {
	srcs := []string{
		"temp > 30 && zone == 2",
		"activity == 'driving' || temp < 10",
		"!(zone != 2) && temp >= 31.5",
		"missingfield == 1",
	}
	env := Env{"temp": 31.5, "zone": 2.0, "activity": "driving"}
	typed := &typedEnv{temp: 31.5, zone: 2.0, act: "driving"}
	for _, src := range srcs {
		f := mustCompile(t, src)
		got, gotErr := f.EvalWith(typed)
		want, wantErr := f.Eval(env)
		if (gotErr != nil) != (wantErr != nil) || got != want {
			t.Errorf("%q: EvalWith=(%v,%v) Eval=(%v,%v)", src, got, gotErr, want, wantErr)
		}
	}
}

// The typed evaluation path performs zero allocations — the contract
// serve's per-cell filtering depends on (hotalloc guards the call site;
// this pins the callee).
func TestEvalWithZeroAllocs(t *testing.T) {
	f := mustCompile(t, "temp > 30 && zone == 2 && activity == 'driving'")
	env := &typedEnv{temp: 31.5, zone: 2.0, act: "driving"}
	allocs := testing.AllocsPerRun(200, func() {
		ok, err := f.EvalWith(env)
		if err != nil || !ok {
			t.Fatalf("EvalWith: ok=%v err=%v", ok, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EvalWith allocates %.1f per run, want 0", allocs)
	}
}
