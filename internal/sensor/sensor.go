// Package sensor implements SenseDroid's sensing-probe framework (paper
// §3, Fig. 3): configurable probes for the physical sensors found on (or
// attached to) mobile phones, a registry through which the middleware
// discovers and configures them, and device heterogeneity profiles that
// feed the GLS noise covariance.
//
// There is no real hardware in this reproduction, so each probe wraps a
// parametric signal model (models.go) plus a configurable noise/bias/drift
// pipeline. The reconstruction and context layers only ever see sampled
// values and noise statistics, which is exactly what they would see from
// real hardware.
package sensor

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Kind identifies a sensor modality.
type Kind string

// Physical sensor modalities provided by the framework (the probe list of
// the paper's Fig. 3).
const (
	Accelerometer Kind = "accelerometer"
	Gyroscope     Kind = "gyroscope"
	Magnetometer  Kind = "magnetometer"
	GPS           Kind = "gps"
	WiFi          Kind = "wifi-rssi"
	Temperature   Kind = "temperature"
	Microphone    Kind = "microphone"
	Barometer     Kind = "barometer"
	Light         Kind = "light"
	Humidity      Kind = "humidity"
	Proximity     Kind = "proximity"
)

// Sample is one multi-axis reading with its timestamp in seconds since the
// probe was created (simulation time, not wall time).
type Sample struct {
	T      float64
	Values []float64
}

// Model is a deterministic ground-truth signal: value of the given axis at
// time t, before any sensor imperfection is applied.
type Model func(t float64, axis int) float64

// Config holds the user-tunable probe parameters exposed through the
// sensing API ("configurable measurement parameters such as sampling rate,
// duration etc.").
type Config struct {
	RateHz     float64 // sampling rate; must be > 0
	NoiseSigma float64 // additive white noise std-dev per axis
	Bias       float64 // constant additive offset
	DriftPerS  float64 // linear drift added as DriftPerS·t
	Seed       int64   // noise RNG seed (deterministic replay)
}

// Probe is one configured sensor instance.
type Probe struct {
	name string
	kind Kind
	axes int
	cfg  Config

	model Model
	rng   *rand.Rand
	t     float64
}

// NewProbe builds a probe from a config and ground-truth model.
func NewProbe(name string, kind Kind, axes int, cfg Config, model Model) (*Probe, error) {
	if name == "" {
		return nil, errors.New("sensor: empty probe name")
	}
	if axes <= 0 {
		return nil, fmt.Errorf("sensor: probe %q needs at least one axis", name)
	}
	if cfg.RateHz <= 0 {
		return nil, fmt.Errorf("sensor: probe %q needs positive sample rate", name)
	}
	if model == nil {
		return nil, fmt.Errorf("sensor: probe %q has no signal model", name)
	}
	return &Probe{
		name: name, kind: kind, axes: axes, cfg: cfg,
		model: model, rng: rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Name returns the probe's unique name.
func (p *Probe) Name() string { return p.name }

// Kind returns the probe's modality.
func (p *Probe) Kind() Kind { return p.kind }

// Axes returns the number of axes per sample.
func (p *Probe) Axes() int { return p.axes }

// Config returns the probe's configuration.
func (p *Probe) Config() Config { return p.cfg }

// NoiseSigma returns the configured noise standard deviation — the number
// the broker uses to build the GLS covariance for heterogeneous sensors.
func (p *Probe) NoiseSigma() float64 { return p.cfg.NoiseSigma }

// Next produces the next sample and advances simulation time by 1/rate.
func (p *Probe) Next() Sample {
	s := Sample{T: p.t, Values: make([]float64, p.axes)}
	for a := 0; a < p.axes; a++ {
		v := p.model(p.t, a) + p.cfg.Bias + p.cfg.DriftPerS*p.t
		if p.cfg.NoiseSigma > 0 {
			v += p.rng.NormFloat64() * p.cfg.NoiseSigma
		}
		s.Values[a] = v
	}
	p.t += 1 / p.cfg.RateHz
	return s
}

// Collect returns the next n samples.
func (p *Probe) Collect(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = p.Next()
	}
	return out
}

// CollectAxis returns the next n readings of a single axis as a plain
// vector, the shape the compressive-sensing layer consumes.
func (p *Probe) CollectAxis(n, axis int) ([]float64, error) {
	if axis < 0 || axis >= p.axes {
		return nil, fmt.Errorf("sensor: axis %d out of range [0,%d)", axis, p.axes)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = p.Next().Values[axis]
	}
	return out, nil
}

// Truth returns the noiseless model value at time t for an axis — ground
// truth for accuracy evaluation (unavailable on real hardware, invaluable
// in a simulator).
func (p *Probe) Truth(t float64, axis int) float64 { return p.model(t, axis) }

// Reset rewinds simulation time and re-seeds the noise stream, replaying
// the identical sample sequence.
func (p *Probe) Reset() {
	p.t = 0
	p.rng = rand.New(rand.NewSource(p.cfg.Seed))
}

// --- Device heterogeneity ----------------------------------------------------

// DeviceProfile captures how sensor quality varies across phone models —
// the paper's "heterogeneous sensors with different characteristics and
// quality (as in different mobile phone)".
type DeviceProfile struct {
	Class      string
	NoiseScale float64 // multiplies each probe's base noise sigma
}

// Built-in profiles spanning the handset quality range.
var (
	ProfileFlagship = DeviceProfile{Class: "flagship", NoiseScale: 0.5}
	ProfileMidrange = DeviceProfile{Class: "midrange", NoiseScale: 1.0}
	ProfileBudget   = DeviceProfile{Class: "budget", NoiseScale: 2.5}
)

// RandomProfile draws a profile with a realistic mix (20% flagship, 50%
// midrange, 30% budget).
func RandomProfile(rng *rand.Rand) DeviceProfile {
	switch r := rng.Float64(); {
	case r < 0.2:
		return ProfileFlagship
	case r < 0.7:
		return ProfileMidrange
	default:
		return ProfileBudget
	}
}

// Apply returns a copy of cfg with the profile's noise scaling applied.
func (d DeviceProfile) Apply(cfg Config) Config {
	cfg.NoiseSigma *= d.NoiseScale
	return cfg
}

// --- Registry ----------------------------------------------------------------

// Registry is a concurrency-safe probe directory: the node middleware
// registers its configured probes here and the sensing API looks them up
// by name or kind.
type Registry struct {
	mu     sync.RWMutex
	probes map[string]*Probe
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{probes: make(map[string]*Probe)}
}

// Register adds a probe; registering a duplicate name is an error.
func (r *Registry) Register(p *Probe) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.probes[p.Name()]; ok {
		return fmt.Errorf("sensor: probe %q already registered", p.Name())
	}
	r.probes[p.Name()] = p
	return nil
}

// Get returns the probe with the given name.
func (r *Registry) Get(name string) (*Probe, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.probes[name]
	return p, ok
}

// Unregister removes a probe by name; removing an absent name is a no-op.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.probes, name)
}

// List returns all probe names, sorted.
func (r *Registry) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.probes))
	for n := range r.probes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByKind returns all probes of a modality, sorted by name.
func (r *Registry) ByKind(kind Kind) []*Probe {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Probe
	for _, p := range r.probes {
		if p.Kind() == kind {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Len returns the number of registered probes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.probes)
}
