package sensor

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func constModel(v float64) Model {
	return func(t float64, axis int) float64 { return v }
}

func TestNewProbeValidation(t *testing.T) {
	m := constModel(1)
	cases := []struct {
		name  string
		axes  int
		cfg   Config
		model Model
	}{
		{"", 1, Config{RateHz: 1}, m},
		{"p", 0, Config{RateHz: 1}, m},
		{"p", 1, Config{RateHz: 0}, m},
		{"p", 1, Config{RateHz: 1}, nil},
	}
	for i, c := range cases {
		if _, err := NewProbe(c.name, Temperature, c.axes, c.cfg, c.model); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
	if _, err := NewProbe("ok", Temperature, 1, Config{RateHz: 1}, m); err != nil {
		t.Fatalf("valid probe rejected: %v", err)
	}
}

func TestProbeSamplingAdvancesTime(t *testing.T) {
	p, _ := NewProbe("p", Temperature, 1, Config{RateHz: 4}, constModel(20))
	s0 := p.Next()
	s1 := p.Next()
	if s0.T != 0 || math.Abs(s1.T-0.25) > 1e-12 {
		t.Fatalf("timestamps %v %v", s0.T, s1.T)
	}
}

func TestProbeNoiseBiasDrift(t *testing.T) {
	p, _ := NewProbe("p", Temperature, 1, Config{RateHz: 1, Bias: 2, DriftPerS: 0.1, Seed: 1}, constModel(10))
	s0 := p.Next() // t=0: 10 + 2 + 0
	if s0.Values[0] != 12 {
		t.Fatalf("t=0 value %v, want 12", s0.Values[0])
	}
	s1 := p.Next() // t=1: 10 + 2 + 0.1
	if math.Abs(s1.Values[0]-12.1) > 1e-12 {
		t.Fatalf("t=1 value %v, want 12.1", s1.Values[0])
	}
	// With noise, repeated Reset gives an identical stream.
	pn, _ := NewProbe("pn", Temperature, 1, Config{RateHz: 10, NoiseSigma: 0.5, Seed: 42}, constModel(0))
	a, _ := pn.CollectAxis(32, 0)
	pn.Reset()
	b, _ := pn.CollectAxis(32, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Reset did not replay the noise stream")
		}
	}
	if mat.Variance(a) == 0 {
		t.Fatal("noise had no effect")
	}
}

func TestCollectAxisRange(t *testing.T) {
	p, _ := NewProbe("p", Accelerometer, 3, Config{RateHz: 1}, constModel(1))
	if _, err := p.CollectAxis(4, 3); err == nil {
		t.Fatal("want axis range error")
	}
	xs, err := p.CollectAxis(4, 1)
	if err != nil || len(xs) != 4 {
		t.Fatalf("CollectAxis: %v len=%d", err, len(xs))
	}
}

func TestMotionScenariosSeparable(t *testing.T) {
	variances := map[MotionScenario]float64{}
	for _, s := range []MotionScenario{MotionIdle, MotionWalking, MotionDriving} {
		m, err := AccelModel(s)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := NewProbe("a", Accelerometer, 3, Config{RateHz: 64, Seed: 1}, m)
		xs, _ := p.CollectAxis(256, 2)
		variances[s] = mat.Variance(xs)
	}
	if variances[MotionIdle] > 0.01 {
		t.Fatalf("idle variance %v too large", variances[MotionIdle])
	}
	if variances[MotionWalking] < 10*variances[MotionIdle] {
		t.Fatal("walking not separable from idle")
	}
	if variances[MotionDriving] < 10*variances[MotionIdle] {
		t.Fatal("driving not separable from idle")
	}
}

func TestAccelModelUnknownScenario(t *testing.T) {
	if _, err := AccelModel(MotionScenario("flying")); err == nil {
		t.Fatal("want error")
	}
	if _, err := GyroModel(MotionScenario("flying")); err == nil {
		t.Fatal("want error")
	}
}

func TestGPSWiFiIndoorOutdoorSignature(t *testing.T) {
	indoor := func(t float64) bool { return true }
	outdoor := func(t float64) bool { return false }
	gIn, gOut := GPSModel(indoor), GPSModel(outdoor)
	if gIn(0, 0) >= gOut(0, 0) {
		t.Fatal("indoor should see fewer satellites")
	}
	if gIn(0, 1) <= gOut(0, 1) {
		t.Fatal("indoor should have worse accuracy")
	}
	wIn, wOut := WiFiModel(indoor), WiFiModel(outdoor)
	if wIn(0, 0) <= wOut(0, 0) {
		t.Fatal("indoor RSSI should be stronger (less negative)")
	}
	if wIn(0, 1) <= wOut(0, 1) {
		t.Fatal("indoor should see more APs")
	}
}

func TestAlternatingSchedule(t *testing.T) {
	s := AlternatingSchedule(10)
	if !s(5) || s(15) || !s(25) {
		t.Fatal("alternation wrong")
	}
	always := AlternatingSchedule(0)
	if !always(123) {
		t.Fatal("zero period should be always-true")
	}
}

func TestEnvironmentalModels(t *testing.T) {
	temp := TempModel(20, 5, 1)
	if v := temp(0, 0); math.Abs(v-20) > 1e-9 {
		t.Fatalf("temp at t=0: %v", v)
	}
	if v := temp(86400.0/4, 0); math.Abs(v-25) > 1e-9 {
		t.Fatalf("temp at quarter day: %v", v)
	}
	baro := BaroModel(0)
	if v := baro(0, 0); math.Abs(v-1013.25) > 2 {
		t.Fatalf("sea-level pressure %v", v)
	}
	baroHigh := BaroModel(2000)
	if baroHigh(0, 0) >= baro(0, 0) {
		t.Fatal("pressure should drop with altitude")
	}
	light := LightModel(func(t float64) bool { return t < 10 })
	if light(0, 0) >= light(20, 0) {
		t.Fatal("outdoor light should exceed indoor")
	}
	prox := ProximityModel(func(t float64) bool { return t < 1 }, 5)
	if prox(0, 0) != 0 || prox(2, 0) != 5 {
		t.Fatal("proximity model wrong")
	}
	mic := MicModel(40, 20)
	if v := mic(0, 0); v < 40 || v > 60 {
		t.Fatalf("mic level %v outside range", v)
	}
	hum := HumidityModel(50, 10)
	if v := hum(0, 0); math.Abs(v-50) > 1e-9 {
		t.Fatalf("humidity %v", v)
	}
}

func TestDeviceProfiles(t *testing.T) {
	cfg := Config{RateHz: 1, NoiseSigma: 0.1}
	if ProfileFlagship.Apply(cfg).NoiseSigma >= ProfileBudget.Apply(cfg).NoiseSigma {
		t.Fatal("flagship should be quieter than budget")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	p1, _ := NewProbe("a/temp", Temperature, 1, Config{RateHz: 1}, constModel(1))
	p2, _ := NewProbe("a/accel", Accelerometer, 3, Config{RateHz: 1}, constModel(0))
	if err := reg.Register(p1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(p2); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(p1); err == nil {
		t.Fatal("duplicate registration should fail")
	}
	if got := reg.List(); len(got) != 2 || got[0] != "a/accel" {
		t.Fatalf("List=%v", got)
	}
	if _, ok := reg.Get("a/temp"); !ok {
		t.Fatal("Get failed")
	}
	if ps := reg.ByKind(Temperature); len(ps) != 1 || ps[0].Name() != "a/temp" {
		t.Fatalf("ByKind=%v", ps)
	}
	reg.Unregister("a/temp")
	if reg.Len() != 1 {
		t.Fatal("Unregister failed")
	}
	reg.Unregister("missing") // no-op
}

func TestStandardPhoneFullComplement(t *testing.T) {
	reg, err := StandardPhone("n0", 7, ProfileMidrange, MotionWalking, AlternatingSchedule(600))
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 11 {
		t.Fatalf("probe count %d, want 11", reg.Len())
	}
	for _, kind := range []Kind{Accelerometer, Gyroscope, Magnetometer, GPS, WiFi,
		Temperature, Microphone, Barometer, Light, Humidity, Proximity} {
		if ps := reg.ByKind(kind); len(ps) != 1 {
			t.Fatalf("missing probe kind %s", kind)
		}
	}
}

func TestFuseOrientationFlatNorth(t *testing.T) {
	// Device flat (gravity on +z), magnetometer pointing north on y.
	o, err := FuseOrientation([]float64{0, 0, 9.81}, []float64{0, 24, -41.6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o.Pitch) > 1e-9 || math.Abs(o.Roll) > 1e-9 {
		t.Fatalf("flat device should have zero pitch/roll: %+v", o)
	}
	if math.Abs(o.Azimuth) > 1e-9 {
		t.Fatalf("north-facing azimuth %v, want 0", o.Azimuth)
	}
}

func TestFuseOrientationEast(t *testing.T) {
	// Facing east: horizontal field appears on device +x.
	o, err := FuseOrientation([]float64{0, 0, 9.81}, []float64{24, 0, -41.6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o.Azimuth-math.Pi/2) > 1e-9 {
		t.Fatalf("east azimuth %v, want π/2", o.Azimuth)
	}
}

func TestFuseOrientationErrors(t *testing.T) {
	if _, err := FuseOrientation([]float64{1}, []float64{1, 2, 3}); err == nil {
		t.Fatal("want axis error")
	}
	if _, err := FuseOrientation([]float64{0, 0, 0}, []float64{1, 2, 3}); err == nil {
		t.Fatal("want zero-gravity error")
	}
}

func TestInclination(t *testing.T) {
	v, err := Inclination([]float64{0, 0, 9.81})
	if err != nil || math.Abs(v) > 1e-9 {
		t.Fatalf("flat inclination %v err %v", v, err)
	}
	v, _ = Inclination([]float64{9.81, 0, 0})
	if math.Abs(v-math.Pi/2) > 1e-9 {
		t.Fatalf("sideways inclination %v, want π/2", v)
	}
	if _, err := Inclination([]float64{0, 0}); err == nil {
		t.Fatal("want axis error")
	}
	if _, err := Inclination([]float64{0, 0, 0}); err == nil {
		t.Fatal("want zero error")
	}
}

func TestCompassVirtualProbeTracksHeading(t *testing.T) {
	// Heading fixed at π/4; fused compass should recover it within noise.
	heading := func(t float64) float64 { return math.Pi / 4 }
	accel, _ := NewProbe("a", Accelerometer, 3, Config{RateHz: 8, Seed: 1},
		func(t float64, axis int) float64 {
			if axis == 2 {
				return 9.81
			}
			return 0
		})
	mag, _ := NewProbe("m", Magnetometer, 3, Config{RateHz: 8, NoiseSigma: 0.2, Seed: 2}, MagModel(heading))
	compass, err := NewCompassProbe("compass", accel, mag)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	const n = 64
	for i := 0; i < n; i++ {
		h, err := compass.Next()
		if err != nil {
			t.Fatal(err)
		}
		sum += h
	}
	if got := sum / n; math.Abs(got-math.Pi/4) > 0.05 {
		t.Fatalf("mean heading %v, want π/4", got)
	}
}

func TestNewCompassProbeValidation(t *testing.T) {
	a, _ := NewProbe("a", Accelerometer, 3, Config{RateHz: 1}, constModel(0))
	if _, err := NewCompassProbe("c", a, a); err == nil {
		t.Fatal("want kind error")
	}
	if _, err := NewCompassProbe("c", nil, nil); err == nil {
		t.Fatal("want nil error")
	}
}

func BenchmarkProbeNext(b *testing.B) {
	m, _ := AccelModel(MotionDriving)
	p, _ := NewProbe("a", Accelerometer, 3, Config{RateHz: 64, NoiseSigma: 0.05, Seed: 1}, m)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Next()
	}
}
