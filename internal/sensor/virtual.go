package sensor

import (
	"errors"
	"math"
)

// This file implements the *fused* virtual sensors of the paper's Fig. 3:
// orientation, compass and inclinometer, constructed by combining physical
// accelerometer and magnetometer probes. (The *context* virtual sensors —
// IsIndoor, IsDriving, activity — live in internal/contextproc because
// they additionally need feature extraction and classification.)

// Orientation is a fused attitude estimate in radians.
type Orientation struct {
	Pitch   float64 // rotation about x, positive nose-up
	Roll    float64 // rotation about y
	Azimuth float64 // compass heading, 0 = magnetic north, in [0, 2π)
}

// FuseOrientation computes the tilt-compensated orientation from a 3-axis
// accelerometer reading (gravity-dominated, device at modest dynamics) and
// a 3-axis magnetometer reading. This is the standard eCompass fusion used
// on Android for the virtual orientation sensor.
func FuseOrientation(accel, mag []float64) (Orientation, error) {
	if len(accel) != 3 || len(mag) != 3 {
		return Orientation{}, errors.New("sensor: FuseOrientation needs 3-axis inputs")
	}
	ax, ay, az := accel[0], accel[1], accel[2]
	g := math.Sqrt(ax*ax + ay*ay + az*az)
	if g == 0 {
		return Orientation{}, errors.New("sensor: zero accelerometer vector")
	}
	pitch := math.Asin(clamp(-ax/g, -1, 1))
	roll := math.Atan2(ay, az)
	// Tilt-compensate the magnetometer.
	sinP, cosP := math.Sin(pitch), math.Cos(pitch)
	sinR, cosR := math.Sin(roll), math.Cos(roll)
	mx, my, mz := mag[0], mag[1], mag[2]
	hx := mx*cosP + mz*sinP
	hy := mx*sinR*sinP + my*cosR - mz*sinR*cosP
	az2 := math.Atan2(hx, hy)
	if az2 < 0 {
		az2 += 2 * math.Pi
	}
	return Orientation{Pitch: pitch, Roll: roll, Azimuth: az2}, nil
}

// Inclination returns the tilt angle (radians) between the device z-axis
// and gravity — the virtual inclinometer probe.
func Inclination(accel []float64) (float64, error) {
	if len(accel) != 3 {
		return 0, errors.New("sensor: Inclination needs a 3-axis input")
	}
	g := math.Sqrt(accel[0]*accel[0] + accel[1]*accel[1] + accel[2]*accel[2])
	if g == 0 {
		return 0, errors.New("sensor: zero accelerometer vector")
	}
	return math.Acos(clamp(accel[2]/g, -1, 1)), nil
}

// CompassHeading returns the fused azimuth in radians — the virtual
// compass probe.
func CompassHeading(accel, mag []float64) (float64, error) {
	o, err := FuseOrientation(accel, mag)
	if err != nil {
		return 0, err
	}
	return o.Azimuth, nil
}

// VirtualProbe wraps a fusion of two physical probes as a derived
// scalar probe-like sampler (e.g. a compass built from accelerometer +
// magnetometer). Sampling advances both underlying probes.
type VirtualProbe struct {
	Name string
	A, B *Probe
	Fuse func(a, b []float64) (float64, error)
}

// Next samples both inputs and returns the fused value.
func (v *VirtualProbe) Next() (float64, error) {
	sa := v.A.Next()
	sb := v.B.Next()
	return v.Fuse(sa.Values, sb.Values)
}

// NewCompassProbe builds the virtual compass from an accelerometer and a
// magnetometer probe.
func NewCompassProbe(name string, accel, mag *Probe) (*VirtualProbe, error) {
	if accel == nil || mag == nil {
		return nil, errors.New("sensor: compass needs both inputs")
	}
	if accel.Kind() != Accelerometer || mag.Kind() != Magnetometer {
		return nil, errors.New("sensor: compass needs accelerometer + magnetometer")
	}
	return &VirtualProbe{Name: name, A: accel, B: mag, Fuse: CompassHeading}, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
