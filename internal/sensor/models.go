package sensor

import (
	"fmt"
	"math"
)

// MotionScenario selects the ground-truth motion driving the inertial
// probes — the workload classes behind the paper's IsDriving context.
type MotionScenario string

// Supported motion scenarios.
const (
	MotionIdle    MotionScenario = "idle"
	MotionWalking MotionScenario = "walking"
	MotionDriving MotionScenario = "driving"
)

const gravity = 9.81

// AccelModel returns a 3-axis accelerometer ground truth (m/s²) for the
// scenario. The scenarios are separable by time-domain energy and dominant
// frequency, which is what the context classifiers key on:
//
//	idle    — gravity only, sub-mm/s² tremor
//	walking — ~2 Hz gait bounce (±2.5 m/s² vertical) with 1 Hz sway
//	driving — broadband road vibration plus ~25 Hz engine ripple
func AccelModel(s MotionScenario) (Model, error) {
	switch s {
	case MotionIdle:
		return func(t float64, axis int) float64 {
			if axis == 2 {
				return gravity + 0.002*math.Sin(2*math.Pi*0.2*t)
			}
			return 0.002 * math.Sin(2*math.Pi*0.3*t+float64(axis))
		}, nil
	case MotionWalking:
		return func(t float64, axis int) float64 {
			switch axis {
			case 0: // lateral sway
				return 0.8 * math.Sin(2*math.Pi*1.0*t)
			case 1: // fore-aft push-off
				return 1.2*math.Sin(2*math.Pi*2.0*t+0.7) + 0.3*math.Sin(2*math.Pi*4.0*t)
			default: // vertical gait bounce
				return gravity + 2.5*math.Sin(2*math.Pi*2.0*t) + 0.6*math.Sin(2*math.Pi*6.0*t)
			}
		}, nil
	case MotionDriving:
		return func(t float64, axis int) float64 {
			road := 1.2*math.Sin(2*math.Pi*0.7*t) + 0.8*math.Sin(2*math.Pi*1.9*t+1.3)
			engine := 0.35 * math.Sin(2*math.Pi*25*t)
			switch axis {
			case 0:
				return 0.9*math.Sin(2*math.Pi*0.4*t) + 0.5*engine
			case 1:
				return 0.6*math.Sin(2*math.Pi*1.1*t+0.5) + engine
			default:
				return gravity + road + engine
			}
		}, nil
	default:
		return nil, fmt.Errorf("sensor: unknown motion scenario %q", s)
	}
}

// GyroModel returns a 3-axis rotation-rate model (rad/s) consistent with
// the motion scenario.
func GyroModel(s MotionScenario) (Model, error) {
	switch s {
	case MotionIdle:
		return func(t float64, axis int) float64 {
			return 0.001 * math.Sin(2*math.Pi*0.1*t+float64(axis))
		}, nil
	case MotionWalking:
		return func(t float64, axis int) float64 {
			return 0.4 * math.Sin(2*math.Pi*2.0*t+float64(axis)*0.9)
		}, nil
	case MotionDriving:
		return func(t float64, axis int) float64 {
			return 0.15*math.Sin(2*math.Pi*0.3*t+float64(axis)) + 0.05*math.Sin(2*math.Pi*25*t)
		}, nil
	default:
		return nil, fmt.Errorf("sensor: unknown motion scenario %q", s)
	}
}

// MagModel returns a 3-axis magnetometer model (µT) for a device whose
// compass heading over time is given by heading (radians, 0 = magnetic
// north). The local Earth field is ~48 µT with a 60° inclination.
func MagModel(heading func(t float64) float64) Model {
	const fieldH = 24.0 // horizontal component, µT
	const fieldV = 41.6 // vertical component, µT
	return func(t float64, axis int) float64 {
		h := heading(t)
		switch axis {
		case 0: // device x: east-ish component
			return fieldH * math.Sin(h)
		case 1: // device y: north-ish component
			return fieldH * math.Cos(h)
		default: // device z: vertical
			return -fieldV
		}
	}
}

// Schedule reports whether a binary condition holds at time t — used for
// indoor/outdoor transitions.
type Schedule func(t float64) bool

// AlternatingSchedule flips the condition every period seconds, starting
// with the condition true.
func AlternatingSchedule(period float64) Schedule {
	return func(t float64) bool {
		if period <= 0 {
			return true
		}
		return int(math.Floor(t/period))%2 == 0
	}
}

// GPSModel returns a 2-axis GPS quality model driven by an indoor
// schedule: axis 0 is visible satellite count, axis 1 is the horizontal
// accuracy estimate in meters. Indoors satellites drop and accuracy
// degrades — the signature the IsIndoor context keys on.
func GPSModel(indoor Schedule) Model {
	return func(t float64, axis int) float64 {
		wobble := 0.5 * math.Sin(2*math.Pi*0.01*t)
		if indoor(t) {
			if axis == 0 {
				return 1.5 + wobble
			}
			return 48 + 4*wobble
		}
		if axis == 0 {
			return 9 + wobble
		}
		return 4 + wobble
	}
}

// WiFiModel returns a 2-axis WiFi environment model driven by an indoor
// schedule: axis 0 is strongest-AP RSSI in dBm, axis 1 is visible AP
// count. Indoors RSSI is strong and APs are plentiful.
func WiFiModel(indoor Schedule) Model {
	return func(t float64, axis int) float64 {
		wobble := math.Sin(2 * math.Pi * 0.02 * t)
		if indoor(t) {
			if axis == 0 {
				return -44 + 2*wobble
			}
			return 8 + wobble
		}
		if axis == 0 {
			return -86 + 2*wobble
		}
		return 1 + 0.4*wobble
	}
}

// TempModel returns a scalar ambient-temperature model (°C): a diurnal
// sinusoid around base with the given swing, period 24 h of simulated
// seconds scaled by dayScale (1 = real seconds).
func TempModel(base, swing, dayScale float64) Model {
	day := 86400.0 * dayScale
	return func(t float64, axis int) float64 {
		return base + swing*math.Sin(2*math.Pi*t/day)
	}
}

// MicModel returns a scalar ambient sound-level model (dB SPL) oscillating
// between quiet and busy periods.
func MicModel(baseDB, swingDB float64) Model {
	return func(t float64, axis int) float64 {
		return baseDB + swingDB*(0.5+0.5*math.Sin(2*math.Pi*t/600))
	}
}

// BaroModel returns a scalar barometric-pressure model (hPa) with slow
// weather variation around sea-level pressure for the given altitude (m).
func BaroModel(altitude float64) Model {
	base := 1013.25 * math.Exp(-altitude/8434)
	return func(t float64, axis int) float64 {
		return base + 1.5*math.Sin(2*math.Pi*t/7200)
	}
}

// LightModel returns a scalar illuminance model (lux) driven by an indoor
// schedule: steady office lighting indoors, bright daylight outdoors.
func LightModel(indoor Schedule) Model {
	return func(t float64, axis int) float64 {
		if indoor(t) {
			return 320 + 10*math.Sin(2*math.Pi*0.05*t)
		}
		return 9500 + 500*math.Sin(2*math.Pi*0.001*t)
	}
}

// HumidityModel returns a scalar relative-humidity model (%).
func HumidityModel(base, swing float64) Model {
	return func(t float64, axis int) float64 {
		return base + swing*math.Sin(2*math.Pi*t/3600)
	}
}

// ProximityModel returns a scalar near/far model (cm, saturating at
// maxRange) that toggles on the given schedule (e.g. phone in pocket).
func ProximityModel(near Schedule, maxRange float64) Model {
	return func(t float64, axis int) float64 {
		if near(t) {
			return 0
		}
		return maxRange
	}
}

// StandardPhone registers the full Fig. 3 probe complement for one
// simulated handset into a fresh registry: accelerometer, gyroscope,
// magnetometer, GPS, WiFi, temperature, microphone, barometer, light,
// humidity and proximity, all configured with the device profile's noise
// scaling. namePrefix distinguishes handsets ("node3/accelerometer").
func StandardPhone(namePrefix string, seed int64, profile DeviceProfile, motion MotionScenario, indoor Schedule) (*Registry, error) {
	reg := NewRegistry()
	accel, err := AccelModel(motion)
	if err != nil {
		return nil, err
	}
	gyro, err := GyroModel(motion)
	if err != nil {
		return nil, err
	}
	heading := func(t float64) float64 { return 0.3 * math.Sin(2*math.Pi*t/300) }
	type spec struct {
		kind  Kind
		axes  int
		rate  float64
		noise float64
		model Model
	}
	specs := []spec{
		{Accelerometer, 3, 64, 0.05, accel},
		{Gyroscope, 3, 64, 0.01, gyro},
		{Magnetometer, 3, 32, 0.5, MagModel(heading)},
		{GPS, 2, 1, 0.3, GPSModel(indoor)},
		{WiFi, 2, 1, 1.5, WiFiModel(indoor)},
		{Temperature, 1, 0.2, 0.2, TempModel(22, 4, 1)},
		{Microphone, 1, 16, 1.0, MicModel(45, 25)},
		{Barometer, 1, 1, 0.1, BaroModel(50)},
		{Light, 1, 2, 15, LightModel(indoor)},
		{Humidity, 1, 0.2, 1.0, HumidityModel(55, 10)},
		{Proximity, 1, 4, 0, ProximityModel(func(t float64) bool { return false }, 5)},
	}
	for i, s := range specs {
		cfg := profile.Apply(Config{
			RateHz: s.rate, NoiseSigma: s.noise, Seed: seed + int64(i)*7919,
		})
		p, err := NewProbe(fmt.Sprintf("%s/%s", namePrefix, s.kind), s.kind, s.axes, cfg, s.model)
		if err != nil {
			return nil, err
		}
		if err := reg.Register(p); err != nil {
			return nil, err
		}
	}
	return reg, nil
}
