// Package discovery implements the service/peer discovery registry of the
// SenseDroid middleware: brokers announce themselves, nodes find their
// NanoCloud broker, and the local cloud tracks which NC brokers are alive.
// Entries carry a lease and expire unless renewed, so departed mobile
// nodes disappear from the directory — mobility makes this essential.
package discovery

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Entry describes one announced service or peer.
type Entry struct {
	Name     string            // unique name, e.g. "nc0/broker"
	Kind     string            // "broker", "node", "cloud", ...
	Addr     string            // transport address or bus topic prefix
	Metadata map[string]string // free-form attributes (zone, capabilities)
	Expires  time.Time
}

// Registry is a lease-based service directory, safe for concurrent use.
// A zero TTL on Announce uses the registry default.
type Registry struct {
	mu         sync.Mutex
	entries    map[string]Entry // guarded by mu
	defaultTTL time.Duration    // immutable after NewRegistry
	now        func() time.Time // immutable after NewRegistry; injectable clock for tests
}

// ErrNotFound reports a lookup miss.
var ErrNotFound = errors.New("discovery: not found")

// NewRegistry creates a registry with the given default lease TTL.
func NewRegistry(defaultTTL time.Duration) *Registry {
	if defaultTTL <= 0 {
		defaultTTL = 30 * time.Second
	}
	return &Registry{
		entries:    make(map[string]Entry),
		defaultTTL: defaultTTL,
		now:        time.Now,
	}
}

// SetClock injects a time source (tests).
func (r *Registry) SetClock(now func() time.Time) {
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// Announce registers or renews an entry with the given TTL (0 = default).
func (r *Registry) Announce(e Entry, ttl time.Duration) error {
	if e.Name == "" {
		return errors.New("discovery: entry needs a name")
	}
	if ttl <= 0 {
		ttl = r.defaultTTL
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e.Expires = r.now().Add(ttl)
	r.entries[e.Name] = e
	return nil
}

// Renew extends an existing entry's lease.
func (r *Registry) Renew(name string, ttl time.Duration) error {
	if ttl <= 0 {
		ttl = r.defaultTTL
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok || !e.Expires.After(r.now()) {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.Expires = r.now().Add(ttl)
	r.entries[name] = e
	return nil
}

// Withdraw removes an entry immediately.
func (r *Registry) Withdraw(name string) {
	r.mu.Lock()
	delete(r.entries, name)
	r.mu.Unlock()
}

// Lookup returns a live entry by name.
func (r *Registry) Lookup(name string) (Entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok || !e.Expires.After(r.now()) {
		return Entry{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e, nil
}

// ByKind returns all live entries of a kind, sorted by name.
func (r *Registry) ByKind(kind string) []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	var out []Entry
	for _, e := range r.entries {
		if e.Kind == kind && e.Expires.After(now) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Sweep removes expired entries and returns how many were dropped.
func (r *Registry) Sweep() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	n := 0
	for name, e := range r.entries {
		if !e.Expires.After(now) {
			delete(r.entries, name)
			n++
		}
	}
	return n
}

// Len returns the number of live entries.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	n := 0
	for _, e := range r.entries {
		if e.Expires.After(now) {
			n++
		}
	}
	return n
}
