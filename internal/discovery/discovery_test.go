package discovery

import (
	"testing"
	"time"
)

// fakeClock lets tests advance time manually.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestRegistry() (*Registry, *fakeClock) {
	r := NewRegistry(10 * time.Second)
	fc := &fakeClock{t: time.Unix(1000, 0)}
	r.SetClock(fc.now)
	return r, fc
}

func TestAnnounceLookup(t *testing.T) {
	r, _ := newTestRegistry()
	if err := r.Announce(Entry{Name: "nc0/broker", Kind: "broker", Addr: "nc/0"}, 0); err != nil {
		t.Fatal(err)
	}
	e, err := r.Lookup("nc0/broker")
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != "broker" || e.Addr != "nc/0" {
		t.Fatalf("entry %+v", e)
	}
	if _, err := r.Lookup("ghost"); err == nil {
		t.Fatal("want not-found")
	}
	if err := r.Announce(Entry{}, 0); err == nil {
		t.Fatal("want name error")
	}
}

func TestLeaseExpiry(t *testing.T) {
	r, fc := newTestRegistry()
	r.Announce(Entry{Name: "n1", Kind: "node"}, 5*time.Second)
	fc.advance(4 * time.Second)
	if _, err := r.Lookup("n1"); err != nil {
		t.Fatal("entry should still be live")
	}
	fc.advance(2 * time.Second)
	if _, err := r.Lookup("n1"); err == nil {
		t.Fatal("entry should have expired")
	}
	if r.Len() != 0 {
		t.Fatal("expired entry counted as live")
	}
}

func TestRenew(t *testing.T) {
	r, fc := newTestRegistry()
	r.Announce(Entry{Name: "n1", Kind: "node"}, 5*time.Second)
	fc.advance(4 * time.Second)
	if err := r.Renew("n1", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	fc.advance(4 * time.Second)
	if _, err := r.Lookup("n1"); err != nil {
		t.Fatal("renewed entry should be live")
	}
	fc.advance(2 * time.Second)
	if err := r.Renew("n1", 0); err == nil {
		t.Fatal("renewing an expired entry should fail")
	}
}

func TestByKindSorted(t *testing.T) {
	r, _ := newTestRegistry()
	r.Announce(Entry{Name: "b", Kind: "node"}, 0)
	r.Announce(Entry{Name: "a", Kind: "node"}, 0)
	r.Announce(Entry{Name: "c", Kind: "broker"}, 0)
	nodes := r.ByKind("node")
	if len(nodes) != 2 || nodes[0].Name != "a" || nodes[1].Name != "b" {
		t.Fatalf("ByKind=%v", nodes)
	}
}

func TestWithdrawAndSweep(t *testing.T) {
	r, fc := newTestRegistry()
	r.Announce(Entry{Name: "a", Kind: "node"}, 2*time.Second)
	r.Announce(Entry{Name: "b", Kind: "node"}, 20*time.Second)
	r.Withdraw("a")
	if _, err := r.Lookup("a"); err == nil {
		t.Fatal("withdrawn entry should be gone")
	}
	r.Announce(Entry{Name: "c", Kind: "node"}, 1*time.Second)
	fc.advance(5 * time.Second)
	if n := r.Sweep(); n != 1 {
		t.Fatalf("swept %d, want 1 (c)", n)
	}
	if r.Len() != 1 {
		t.Fatalf("live entries %d, want 1 (b)", r.Len())
	}
}

func TestDefaultTTLFallback(t *testing.T) {
	r := NewRegistry(0)
	if r.defaultTTL <= 0 {
		t.Fatal("zero TTL should fall back to a positive default")
	}
}
