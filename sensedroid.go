// Package sensedroid is the public façade of the SenseDroid reproduction:
// a hierarchical, collaborative, compressive mobile crowdsensing
// middleware (Sarma, Venkatasubramanian, Dutt — DAC 2014).
//
// The implementation lives in internal/ packages; this package re-exports
// the surface a downstream user needs:
//
//   - Deploy a hierarchy (public cloud → local clouds → NanoCloud brokers
//     → mobile nodes) with New.
//   - Point it at a ground-truth field with (*Middleware).SetTruth — in a
//     real deployment the physical world plays this role.
//   - Run collaborative compressive sensing campaigns with RunCampaign,
//     choosing uniform or sparsity/criticality-adaptive per-zone budgets.
//   - Run on-device context sensing (IsDriving, IsIndoor, activity,
//     stress) and group fusion with GroupContexts / contextproc.
//
// See examples/ for runnable scenarios and DESIGN.md for the system map.
package sensedroid

import (
	"repro/internal/core"
	"repro/internal/field"
)

// Re-exported aliases: the middleware API surface.
type (
	// Options sizes a deployment (field grid, zones, NanoClouds, nodes).
	Options = core.Options
	// Middleware is a deployed SenseDroid instance.
	Middleware = core.SenseDroid
	// CampaignConfig parameterizes one collaborative sensing campaign.
	CampaignConfig = core.CampaignConfig
	// CampaignResult reports a completed campaign.
	CampaignResult = core.CampaignResult
	// TemporalCampaignConfig parameterizes a multi-round campaign decoded
	// jointly in the temporal⊗spatial basis.
	TemporalCampaignConfig = core.TemporalCampaignConfig
	// TemporalCampaignResult reports a completed temporal campaign.
	TemporalCampaignResult = core.TemporalCampaignResult
	// Field is a discretized 2-D spatial map (column-stacked, Eq. 1).
	Field = field.Field
	// Plume is one Gaussian hotspot in a synthetic field.
	Plume = field.Plume
	// Zone is one rectangular region of the hierarchy.
	Zone = field.Zone
)

// New builds the full middleware hierarchy.
func New(opts Options) (*Middleware, error) { return core.New(opts) }

// NewField returns a zero field of width w and height h.
func NewField(w, h int) *Field { return field.New(w, h) }

// GenPlumes synthesizes a plume field (disaster-response style workload).
func GenPlumes(w, h int, ambient float64, plumes []Plume) *Field {
	return field.GenPlumes(w, h, ambient, plumes)
}
